"""Simulation runner: stream traces through schemes and aggregate results.

The runner wires together the substrates — trace generation, the write
scheme, the PCM wear array, and (optionally) Start-Gap + HWL — and produces
a :class:`~repro.sim.results.RunResult`.  Traces are cached per (workload,
n_writes, seed, line_bytes) so that every scheme in a comparison sees the
*identical* writeback stream, which is what makes per-workload bars
comparable across schemes.

Observability: :func:`run` accepts an optional
:class:`~repro.obs.instruments.Instruments` bundle.  When every backend is
null (the default), the untouched fast write loop runs and results are
bit-identical to uninstrumented code; when any backend is live, an
instrumented loop additionally records per-phase timers, per-write spans
(``scheme.write`` / ``pad.fetch`` / ``wear.rotation`` / ``pcm.apply``),
interval samples into ``RunResult.series``, and periodic heartbeats.
Instrumentation only ever *reads* simulation state, so both loops produce
identical results (there is a test for this).
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict

import numpy as np

from repro.crypto.pads import CachingPadSource, make_pad_source
from repro.memory.pcm import (
    PcmArray,
    slots_for_batch,
    slots_for_batch_diffs,
    slots_for_write,
)
from repro.schemes.batch import BatchOutcome
from repro.obs.instruments import (
    DISABLED,
    Instruments,
    InstrumentedPadSource,
    RunAborted,
)
from repro.obs.sampling import IntervalSampler
from repro import registry
from repro.schemes.base import WriteOutcome, WriteScheme
from repro.sim.checkpoint import (
    CheckpointError,
    RunCheckpoint,
    RunCheckpointer,
    config_signature,
    load_run_checkpoint,
)
from repro.sim.config import SimConfig
from repro.sim.results import RunResult
from repro.wear.hwl import NoWearLeveler
from repro.wear.lifetime import lifetime_report
from repro.workloads.trace import Trace, generate_trace


_TRACE_CACHE: OrderedDict[tuple, Trace] = OrderedDict()
_TRACE_CACHE_MAX = 32
_TRACE_CACHE_LOCK = threading.Lock()


def cached_trace(
    workload: str,
    n_writes: int,
    seed: int,
    line_bytes: int,
    abort=None,
    params: dict | None = None,
) -> Trace:
    """Memoized trace generation (same stream for every scheme compared).

    ``abort`` is threaded into :func:`generate_trace` so a job deadline or
    cancel can interrupt synthesis of a large trace; an aborted generation
    raises without poisoning the cache.  ``params`` (a config's
    ``workload_params``) is part of the cache key — two configs differing
    only in a KV knob get distinct traces.
    """
    key = (
        workload,
        n_writes,
        seed,
        line_bytes,
        json.dumps(params or {}, sort_keys=True),
    )
    with _TRACE_CACHE_LOCK:
        trace = _TRACE_CACHE.get(key)
        if trace is not None:
            _TRACE_CACHE.move_to_end(key)
            return trace
    trace = generate_trace(
        workload,
        n_writes,
        seed=seed,
        line_bytes=line_bytes,
        abort=abort,
        params=params,
    )
    with _TRACE_CACHE_LOCK:
        _TRACE_CACHE[key] = trace
        _TRACE_CACHE.move_to_end(key)
        while len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
            _TRACE_CACHE.popitem(last=False)
    return trace


def build_scheme(config: SimConfig) -> WriteScheme:
    """Instantiate the configured write scheme (with pads if encrypted).

    Encrypted schemes get their pad source wrapped in an LRU
    :class:`~repro.crypto.pads.CachingPadSource` sized by
    ``config.pad_cache_lines`` (0 disables), so epoch-boundary re-reads of a
    hot line's trailing pad hit the cache instead of the cipher.
    """
    cls = registry.SCHEMES.get(config.scheme).factory
    pads = None
    if cls.requires_pads:
        pads = make_pad_source(config.pad_kind, config.key)
        if config.pad_cache_lines > 0:
            pads = CachingPadSource(pads, capacity=config.pad_cache_lines)
    return cls.from_config(config, pads=pads)


def _find_pad_cache(pads) -> CachingPadSource | None:
    """Locate the LRU pad cache in a (possibly wrapped) pad-source chain."""
    while pads is not None:
        if isinstance(pads, CachingPadSource):
            return pads
        pads = getattr(pads, "inner", None)
    return None


def _accumulate(
    result: RunResult, outcome: WriteOutcome, line_bits: int
) -> int:
    """Fold one write outcome into the running aggregates; returns slots.

    Shared by the plain and instrumented write loops so the two can never
    diverge in what they count.
    """
    result.total_flips += outcome.total_flips
    result.data_flips += outcome.data_flips
    result.meta_flips += outcome.metadata_flips
    result.set_flips += outcome.set_flips
    result.reset_flips += outcome.reset_flips
    slots = slots_for_write(outcome, line_bits)
    result.total_slots += slots
    result.slot_histogram[slots] += 1
    result.total_words_reencrypted += outcome.words_reencrypted
    result.full_reencryptions += int(outcome.full_line_reencrypted)
    result.epoch_resets += int(outcome.epoch_reset)
    result.mode_switches += int(outcome.mode_switched)
    if outcome.mode:
        result.mode_histogram[outcome.mode] += 1
    return slots


def _accumulate_batch(
    result: RunResult, batch: BatchOutcome, line_bits: int
) -> None:
    """Fold a whole chunk's outcomes into the aggregates at once.

    Every count a :func:`_accumulate` loop would produce, computed as array
    sums and one ``bincount`` for the slot histogram — bit-identical to
    folding the chunk's writes one at a time.
    """
    data = int(batch.data_flips.sum())
    meta = int(batch.meta_flips.sum())
    result.total_flips += data + meta
    result.data_flips += data
    result.meta_flips += meta
    result.set_flips += int(batch.set_flips.sum())
    result.reset_flips += int(batch.reset_flips.sum())
    if batch.data_diff is not None:
        slots = slots_for_batch_diffs(
            batch.data_diff, batch.meta_diff, line_bits
        )
    else:
        slots = slots_for_batch(
            batch.n_writes,
            batch.data_positions,
            batch.data_rows,
            batch.meta_positions,
            batch.meta_rows,
            line_bits,
        )
    result.total_slots += int(slots.sum())
    for n_slots, count in enumerate(np.bincount(slots).tolist()):
        if count:
            result.slot_histogram[n_slots] += count
    result.total_words_reencrypted += int(batch.words_reencrypted.sum())
    result.full_reencryptions += int(batch.full_line_reencrypted.sum())
    result.epoch_resets += int(batch.epoch_reset.sum())
    result.mode_switches += int(batch.mode_switched.sum())
    for mode, count in batch.mode_counts.items():
        result.mode_histogram[mode] += count


class _PhaseTracker:
    """Fires :meth:`RunResult.record_phase` at exact phase boundaries.

    Built from the trace's ``phases`` declaration; each phase's end is the
    next phase's start (the last ends at ``n_records``).  Loops call
    :meth:`note` with the count of writes folded in so far; because the
    chunked loop also cuts chunks at :attr:`next_end`, ``note`` always
    sees the boundary index exactly and the cumulative snapshot is
    bit-identical across all three write loops.  On resume, phases the
    checkpoint already recorded are not re-recorded.
    """

    def __init__(
        self, trace: Trace, result: RunResult, start: int = 0
    ) -> None:
        n_records = len(trace.records)
        phases = trace.phases
        self._result = result
        pending: list[tuple[int, str, int]] = []
        for idx, (name, p_start) in enumerate(phases):
            p_end = (
                phases[idx + 1][1] if idx + 1 < len(phases) else n_records
            )
            p_end = min(int(p_end), n_records)
            if p_end <= int(p_start) or name in result.phase_stats:
                continue  # empty phase, or already restored from checkpoint
            if p_end <= start:
                # Resumed past the boundary without a recorded snapshot
                # (pre-phase checkpoint): the exact cumulative values are
                # gone, so skip rather than record wrong ones.
                continue
            pending.append((p_end, str(name), int(p_start)))
        pending.sort()
        self._pending = pending

    @property
    def next_end(self) -> int | None:
        """The next boundary index a chunk must not cross, if any."""
        return self._pending[0][0] if self._pending else None

    def note(self, i: int) -> None:
        """Record every phase whose last write has now been folded in."""
        while self._pending and i >= self._pending[0][0]:
            end, name, start = self._pending.pop(0)
            self._result.record_phase(name, start, end)


def run(
    config: SimConfig | None = None,
    trace: Trace | None = None,
    instruments: Instruments | None = None,
    *,
    checkpoint_dir=None,
    checkpoint_every: int = 0,
    resume_from: "RunCheckpoint | str | None" = None,
) -> RunResult:
    """Execute one simulation and return aggregated results.

    Parameters
    ----------
    config:
        The run configuration.  May be omitted when resuming — the
        checkpoint carries its config; when both are given they must match.
    trace:
        Optional pre-generated trace (must match the config's workload and
        line size); omitted, the cached generator is used.
    instruments:
        Optional observability bundle (metrics, tracing, sampling,
        heartbeats).  ``None`` (or a fully-null bundle) takes the
        uninstrumented fast path; results are identical either way.
    checkpoint_dir / checkpoint_every:
        When ``checkpoint_every > 0``, snapshot all mutable state into
        ``checkpoint_dir`` every that many writes (crash-safe; see
        :mod:`repro.sim.checkpoint`).
    resume_from:
        A :class:`RunCheckpoint` or a checkpoint directory path.  The run
        skips install, restores every piece of state, and continues from
        the saved write index; the final result is bit-identical to an
        uninterrupted run (only ``wall_time_s`` covers the continuation).
    """
    t_start = time.perf_counter()
    obs = instruments if instruments is not None else DISABLED
    tracer = obs.tracer
    profile = obs.profile

    checkpoint = None
    if resume_from is not None:
        checkpoint = (
            resume_from
            if isinstance(resume_from, RunCheckpoint)
            else load_run_checkpoint(resume_from)
        )
        if config is None:
            config = checkpoint.config
        elif config_signature(config) != config_signature(checkpoint.config):
            raise CheckpointError(
                "resume config does not match the checkpoint's config "
                f"({config_signature(config)} != "
                f"{config_signature(checkpoint.config)})"
            )
    if config is None:
        raise ValueError("run() needs a config or a resume_from checkpoint")

    if trace is None:
        with tracer.span("trace.gen", workload=config.workload):
            tg0 = time.perf_counter()
            trace = cached_trace(
                config.workload,
                config.n_writes,
                config.seed,
                config.line_bytes,
                abort=obs.abort if obs.enabled else None,
                params=config.workload_params,
            )
            if profile is not None:
                profile.add("trace.gen", time.perf_counter() - tg0)
    scheme = build_scheme(config)
    pad_cache = _find_pad_cache(getattr(scheme, "pads", None))
    if obs.enabled and getattr(scheme, "pads", None) is not None:
        # Outermost wrap: pad-fetch timing as the scheme experiences it
        # (cache hits included).
        scheme.pads = InstrumentedPadSource(scheme.pads, obs.metrics, tracer)

    # The chunked loop replicates every observable the instrumented loop
    # records except per-write trace spans, so it runs whenever the scheme
    # can batch and nobody asked for write-granular spans.  Decided before
    # install: the chunked path also installs the working set through one
    # batched pad call, while ``chunk_size=1`` keeps the per-write
    # reference behaviour end to end.
    use_chunked = (
        config.chunk_size > 1
        and scheme.supports_write_batch
        and not (tracer.enabled and obs.per_write_spans)
    )
    addresses = trace.addresses()
    ti0 = time.perf_counter() if profile is not None else 0.0
    if checkpoint is None:
        with tracer.span("install", lines=len(addresses)):
            if use_chunked:
                init_addresses, init_data = trace.initial_arrays()
                scheme.install_batch(init_addresses, init_data)
            else:
                for addr in addresses:
                    scheme.install(addr, trace.initial[addr])
        if profile is not None:
            profile.add("install", time.perf_counter() - ti0)
    else:
        with tracer.span("resume.load", write_index=checkpoint.write_index):
            scheme.load_state_dict(checkpoint.scheme_state)
        if profile is not None:
            profile.add("resume.load", time.perf_counter() - ti0)

    meta_bits = scheme.metadata_bits_per_line
    pcm = PcmArray(
        line_bytes=config.line_bytes,
        meta_bits=meta_bits,
        track_per_line=config.track_per_line_wear,
    )
    region = config.hwl_region_lines or len(addresses)
    if config.wear_leveling == "sr-hwl":
        # Security Refresh remaps by XOR, so its region must be a power
        # of two; round down if the working set is not.
        while region & (region - 1):
            region &= region - 1
        region = max(region, 2)
    leveler = _build_leveler(config, region, pcm.bits_per_line)
    vwl = getattr(leveler, "startgap", None) or getattr(
        leveler, "refresh", None
    )
    # The chunked loop never consults the line index without a wear
    # leveler, so skip building it for that combination.
    if use_chunked and isinstance(leveler, NoWearLeveler):
        line_index: dict[int, int] = {}
    else:
        line_index = {addr: i % region for i, addr in enumerate(addresses)}

    result = RunResult(
        workload=config.workload,
        scheme=config.scheme,
        n_writes=len(trace.records),
        line_bits=8 * config.line_bytes,
        meta_bits=meta_bits,
    )
    start = 0
    if checkpoint is not None:
        pcm.load_state_dict(checkpoint.pcm_state)
        leveler.load_state_dict(checkpoint.leveler_state)
        if pad_cache is not None and checkpoint.pad_cache_state is not None:
            pad_cache.load_state_dict(checkpoint.pad_cache_state)
        result.load_checkpoint_state(checkpoint.result_state)
        start = checkpoint.write_index
    checkpointer = None
    if checkpoint_every > 0:
        if checkpoint_dir is None:
            raise ValueError("checkpoint_every > 0 needs a checkpoint_dir")
        checkpointer = RunCheckpointer(
            checkpoint_dir,
            checkpoint_every,
            config=config,
            scheme=scheme,
            pcm=pcm,
            leveler=leveler,
            result=result,
            pad_cache=pad_cache,
        )
    tracker = (
        _PhaseTracker(trace, result, start=start) if trace.phases else None
    )
    if use_chunked:
        _write_loop_chunked(
            config, trace, scheme, pcm, leveler, vwl, line_index, result, obs,
            pad_cache, start=start, checkpointer=checkpointer,
            tracker=tracker,
        )
    elif obs.enabled:
        _write_loop_instrumented(
            config, trace, scheme, pcm, leveler, vwl, line_index, result, obs,
            pad_cache, start=start, checkpointer=checkpointer,
            tracker=tracker,
        )
    else:
        _write_loop(
            config, trace, scheme, pcm, leveler, vwl, line_index, result,
            start=start, checkpointer=checkpointer, tracker=tracker,
        )

    result.wear = pcm.summary()
    result.lifetime = lifetime_report(
        result.wear.position_writes, result.wear.total_writes
    )
    if pad_cache is not None:
        result.pad_hits = pad_cache.hits
        result.pad_misses = pad_cache.misses
    # Timing/provenance metadata for the run ledger; reading the clock and
    # attaching the config cannot perturb the simulation aggregates above.
    result.wall_time_s = time.perf_counter() - t_start
    result.config = config
    if profile is not None:
        # Pad precompute happens inside write_batch; the instrumented pad
        # wrapper already timed it, so attribute it from the metrics timer
        # rather than re-stamping the hot path.
        pad_timer = obs.metrics.timer("pad.fetch_s")
        if pad_timer.count:
            profile.add("pad.fetch", pad_timer.total, pad_timer.count)
        result.profile = profile.to_dict()
    return result


def _write_loop(
    config: SimConfig,
    trace: Trace,
    scheme: WriteScheme,
    pcm: PcmArray,
    leveler,
    vwl,
    line_index: dict[int, int],
    result: RunResult,
    start: int = 0,
    checkpointer: RunCheckpointer | None = None,
    tracker: "_PhaseTracker | None" = None,
) -> None:
    """The uninstrumented hot loop — nothing here but the simulation.

    ``start`` skips already-applied writes on resume.  With a checkpointer
    or phase tracker the loop pays one counter and one call per write;
    without either the original zero-overhead body runs.
    """
    line_bits = 8 * config.line_bytes
    records = trace.records if not start else trace.records[start:]
    if checkpointer is None and tracker is None:
        for record in records:
            outcome = scheme.write(record.address, record.data)
            rotation = leveler.rotation(line_index[record.address])
            pcm.apply_write(outcome, rotation=rotation)
            if vwl is not None:
                vwl.on_write()
            _accumulate(result, outcome, line_bits)
        return
    i = start
    for record in records:
        outcome = scheme.write(record.address, record.data)
        rotation = leveler.rotation(line_index[record.address])
        pcm.apply_write(outcome, rotation=rotation)
        if vwl is not None:
            vwl.on_write()
        _accumulate(result, outcome, line_bits)
        i += 1
        if tracker is not None:
            tracker.note(i)
        if checkpointer is not None:
            checkpointer.maybe(i)


def _next_multiple(i: int, every: int) -> int:
    """The smallest multiple of ``every`` strictly greater than ``i``."""
    return (i // every + 1) * every


def _write_loop_chunked(
    config: SimConfig,
    trace: Trace,
    scheme: WriteScheme,
    pcm: PcmArray,
    leveler,
    vwl,
    line_index: dict[int, int],
    result: RunResult,
    obs: Instruments,
    pad_cache: CachingPadSource | None,
    start: int = 0,
    checkpointer: RunCheckpointer | None = None,
    tracker: "_PhaseTracker | None" = None,
) -> None:
    """The batched write loop: whole trace chunks through ``write_batch``.

    Chunks are cut so that every interval-triggered side effect — abort
    polls, checkpoint saves, interval samples, heartbeats, and wear-leveler
    gap movements — lands exactly where the serial loops put it:

    * sample/heartbeat/checkpoint intervals fire *after* the write at each
      multiple, so a chunk never crosses a multiple (it ends on one);
    * abort polls happen *before* the write at each multiple, so a chunk
      never contains one (the poll runs at the top of the next chunk);
    * a Start-Gap/Security-Refresh event fires at most once per chunk, as
      its final write, keeping the HWL rotation constant across the chunk
      (the serial loop computes each write's rotation before notifying the
      leveler, so the triggering write itself still uses the old rotation).

    Everything else (epoch resets, pad-cache traffic, flip accounting) is
    handled inside ``write_batch`` bit-identically to the serial path.
    Metrics use ``observe_many`` so timer/counter counts match the
    per-write loop; when tracing is live, one span per chunk is emitted
    under the serial span names (the loop is only selected with tracing on
    when ``per_write_spans`` is off).
    """
    line_bits = 8 * config.line_bytes
    addresses_arr, data_arr = trace.write_arrays()
    n_records = int(addresses_arr.shape[0])
    chunk_size = config.chunk_size
    no_rotation = isinstance(leveler, NoWearLeveler)
    enabled = obs.enabled
    metrics = obs.metrics
    tracer = obs.tracer
    tracing = tracer.enabled
    profile = obs.profile
    perf = time.perf_counter

    t_write = t_rotate = t_pcm = None
    if enabled:
        t_write = metrics.timer("scheme.write_s")
        t_rotate = metrics.timer("wear.rotation_s")
        t_pcm = metrics.timer("pcm.apply_s")
    sampler = None
    sample_every = 0
    if enabled and obs.sample_interval > 0:
        sampler = IntervalSampler(obs.sample_interval, result, pcm, pad_cache)
        sample_every = obs.sample_interval
    heartbeat = obs.heartbeat if enabled else None
    hb_every = 0
    if heartbeat is not None:
        hb_every = obs.heartbeat_every or max(1, n_records // 10)
    abort = obs.abort if enabled else None
    abort_every = 0
    if abort is not None:
        abort_every = obs.abort_every or max(1, min(512, n_records // 10))

    loop_t0 = perf()
    i = start
    while i < n_records:
        if abort is not None and (i + 1) % abort_every == 0 and abort():
            raise RunAborted(
                f"run aborted before write {i + 1}/{n_records} "
                f"({config.workload}/{config.scheme})",
                writes_done=i,
            )
        end = min(i + chunk_size, n_records)
        if sample_every:
            end = min(end, _next_multiple(i, sample_every))
        if hb_every:
            end = min(end, _next_multiple(i, hb_every))
        if checkpointer is not None:
            end = min(end, _next_multiple(i, checkpointer.every))
        if abort_every:
            end = min(end, _next_multiple(i + 1, abort_every) - 1)
        if vwl is not None:
            end = min(end, i + vwl.writes_until_event)
        if tracker is not None and tracker.next_end is not None:
            # End chunks on phase boundaries so the cumulative snapshot
            # lands exactly where the serial loops take it.
            end = min(end, tracker.next_end)
        k = end - i

        t0 = perf()
        batch = scheme.write_batch(addresses_arr[i:end], data_arr[i:end])
        t1 = perf()
        if no_rotation:
            rotations = None
        else:
            uniq, inv = np.unique(batch.addresses, return_inverse=True)
            per_line = np.fromiter(
                (leveler.rotation(line_index[int(a)]) for a in uniq),
                dtype=np.int64,
                count=uniq.size,
            )
            rotations = per_line[inv]
        t2 = perf()
        if batch.data_diff is not None:
            pcm.apply_batch_diffs(
                batch.addresses,
                batch.data_diff,
                batch.meta_diff,
                rotations=rotations,
            )
        else:
            pcm.apply_batch(
                batch.addresses,
                batch.data_positions,
                batch.data_rows,
                batch.meta_positions,
                batch.meta_rows,
                rotations=rotations,
            )
        t3 = perf()
        if vwl is not None:
            vwl.advance(k)
        _accumulate_batch(result, batch, line_bits)
        i = end
        if tracker is not None:
            tracker.note(i)

        if profile is not None:
            # Reuses the t0..t3 stamps the loop already takes; the only
            # extra clock read covers the scatter-add accumulate phase.
            t4 = perf()
            profile.add("scheme.write", t1 - t0, k)
            profile.add("wear.rotation", t2 - t1, k)
            profile.add("pcm.apply", t3 - t2, k)
            profile.add("accumulate", t4 - t3, k)
        if enabled:
            t_write.observe_many(t1 - t0, k)
            t_rotate.observe_many(t2 - t1, k)
            t_pcm.observe_many(t3 - t2, k)
            if tracing:
                tracer.span_event(
                    "scheme.write", t0, t1 - t0, write=i, n=k,
                    flips=int(batch.data_flips.sum() + batch.meta_flips.sum()),
                )
                tracer.span_event("wear.rotation", t1, t2 - t1, write=i, n=k)
                tracer.span_event("pcm.apply", t2, t3 - t2, write=i, n=k)
        if checkpointer is not None:
            if profile is not None:
                tc0 = perf()
                checkpointer.maybe(i)
                profile.add("checkpoint", perf() - tc0)
            else:
                checkpointer.maybe(i)
        if sample_every and i % sample_every == 0:
            sampler.record(i)
        if hb_every and i % hb_every == 0:
            heartbeat(i, n_records)

    if enabled:
        metrics.gauge("run.write_loop_s").set(perf() - loop_t0)
        metrics.counter("run.writes").inc(result.n_writes)
        metrics.counter("run.flips").inc(result.total_flips)
        metrics.counter("run.slots").inc(result.total_slots)
        metrics.counter("run.epoch_resets").inc(result.epoch_resets)
        metrics.counter("run.mode_switches").inc(result.mode_switches)
        metrics.counter("run.full_reencryptions").inc(
            result.full_reencryptions
        )
        if pad_cache is not None:
            metrics.counter("pad.cache_hits").inc(pad_cache.hits)
            metrics.counter("pad.cache_misses").inc(pad_cache.misses)
        if sampler is not None:
            result.series = sampler.finalize(n_records)


def _write_loop_instrumented(
    config: SimConfig,
    trace: Trace,
    scheme: WriteScheme,
    pcm: PcmArray,
    leveler,
    vwl,
    line_index: dict[int, int],
    result: RunResult,
    obs: Instruments,
    pad_cache: CachingPadSource | None,
    start: int = 0,
    checkpointer: RunCheckpointer | None = None,
    tracker: "_PhaseTracker | None" = None,
) -> None:
    """The observed write loop: timers, spans, samples, heartbeats.

    Instrumentation is read-only, so this loop produces the same
    :class:`RunResult` aggregates as :func:`_write_loop` on the same inputs.
    """
    line_bits = 8 * config.line_bytes
    metrics = obs.metrics
    tracer = obs.tracer
    tracing = tracer.enabled
    perf = time.perf_counter

    t_write = metrics.timer("scheme.write_s")
    t_rotate = metrics.timer("wear.rotation_s")
    t_pcm = metrics.timer("pcm.apply_s")

    n_records = len(trace.records)
    sampler = None
    if obs.sample_interval > 0:
        sampler = IntervalSampler(
            obs.sample_interval, result, pcm, pad_cache
        )
        sample_every = obs.sample_interval
    heartbeat = obs.heartbeat
    if heartbeat is not None:
        hb_every = obs.heartbeat_every or max(1, n_records // 10)
    abort = obs.abort
    if abort is not None:
        abort_every = obs.abort_every or max(1, min(512, n_records // 10))

    loop_t0 = perf()
    i = start
    records = trace.records if not start else trace.records[start:]
    for record in records:
        i += 1
        if abort is not None and i % abort_every == 0 and abort():
            raise RunAborted(
                f"run aborted before write {i}/{n_records} "
                f"({config.workload}/{config.scheme})",
                writes_done=i - 1,
            )
        t0 = perf()
        outcome = scheme.write(record.address, record.data)
        t1 = perf()
        rotation = leveler.rotation(line_index[record.address])
        t2 = perf()
        pcm.apply_write(outcome, rotation=rotation)
        t3 = perf()
        if vwl is not None:
            vwl.on_write()
        t_write.observe(t1 - t0)
        t_rotate.observe(t2 - t1)
        t_pcm.observe(t3 - t2)
        if obs.profile is not None:
            obs.profile.add("scheme.write", t1 - t0)
            obs.profile.add("wear.rotation", t2 - t1)
            obs.profile.add("pcm.apply", t3 - t2)
        _accumulate(result, outcome, line_bits)
        if tracker is not None:
            tracker.note(i)
        if checkpointer is not None:
            checkpointer.maybe(i)
        if tracing:
            tracer.span_event(
                "scheme.write",
                t0,
                t1 - t0,
                write=i,
                addr=record.address,
                flips=outcome.total_flips,
                mode=outcome.mode,
            )
            tracer.span_event("wear.rotation", t1, t2 - t1, write=i)
            tracer.span_event(
                "pcm.apply", t2, t3 - t2, write=i, rotation=rotation
            )
            if outcome.epoch_reset:
                tracer.event(
                    "epoch.reset", write=i, addr=record.address
                )
            if outcome.mode_switched:
                tracer.event(
                    "mode.switch",
                    write=i,
                    addr=record.address,
                    mode=outcome.mode,
                )
        if sampler is not None and i % sample_every == 0:
            sampler.record(i)
        if heartbeat is not None and i % hb_every == 0:
            heartbeat(i, n_records)

    metrics.gauge("run.write_loop_s").set(perf() - loop_t0)
    metrics.counter("run.writes").inc(result.n_writes)
    metrics.counter("run.flips").inc(result.total_flips)
    metrics.counter("run.slots").inc(result.total_slots)
    metrics.counter("run.epoch_resets").inc(result.epoch_resets)
    metrics.counter("run.mode_switches").inc(result.mode_switches)
    metrics.counter("run.full_reencryptions").inc(result.full_reencryptions)
    if pad_cache is not None:
        metrics.counter("pad.cache_hits").inc(pad_cache.hits)
        metrics.counter("pad.cache_misses").inc(pad_cache.misses)
    if sampler is not None:
        result.series = sampler.finalize(n_records)


def run_suite(
    configs: list[SimConfig], trace: Trace | None = None
) -> list[RunResult]:
    """Run several configurations (sharing cached traces per workload)."""
    return [run(config, trace=trace) for config in configs]


def _build_leveler(config: SimConfig, n_lines: int, bits_per_line: int):
    return registry.WEAR_LEVELERS.create(
        config.wear_leveling, config, n_lines, bits_per_line
    )
