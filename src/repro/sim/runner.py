"""Simulation runner: stream traces through schemes and aggregate results.

The runner wires together the substrates — trace generation, the write
scheme, the PCM wear array, and (optionally) Start-Gap + HWL — and produces
a :class:`~repro.sim.results.RunResult`.  Traces are cached per (workload,
n_writes, seed, line_bytes) so that every scheme in a comparison sees the
*identical* writeback stream, which is what makes per-workload bars
comparable across schemes.
"""

from __future__ import annotations

from functools import lru_cache

from repro.crypto.pads import CachingPadSource, make_pad_source
from repro.memory.pcm import PcmArray, slots_for_write
from repro.schemes import ENCRYPTED_SCHEMES, make_scheme
from repro.schemes.base import WriteScheme
from repro.sim.config import SimConfig
from repro.sim.results import RunResult
from repro.wear.hwl import HorizontalWearLeveler, NoWearLeveler
from repro.wear.lifetime import lifetime_report
from repro.wear.security_refresh import SecurityRefresh, SecurityRefreshHWL
from repro.wear.startgap import StartGap
from repro.workloads.trace import Trace, generate_trace


@lru_cache(maxsize=32)
def cached_trace(
    workload: str, n_writes: int, seed: int, line_bytes: int
) -> Trace:
    """Memoized trace generation (same stream for every scheme compared)."""
    return generate_trace(workload, n_writes, seed=seed, line_bytes=line_bytes)


def build_scheme(config: SimConfig) -> WriteScheme:
    """Instantiate the configured write scheme (with pads if encrypted).

    Encrypted schemes get their pad source wrapped in an LRU
    :class:`~repro.crypto.pads.CachingPadSource` sized by
    ``config.pad_cache_lines`` (0 disables), so epoch-boundary re-reads of a
    hot line's trailing pad hit the cache instead of the cipher.
    """
    pads = None
    if config.scheme in ENCRYPTED_SCHEMES:
        pads = make_pad_source(config.pad_kind, config.key)
        if config.pad_cache_lines > 0:
            pads = CachingPadSource(pads, capacity=config.pad_cache_lines)
    return make_scheme(
        config.scheme,
        pads,
        line_bytes=config.line_bytes,
        word_bytes=config.word_bytes,
        epoch_interval=config.epoch_interval,
        fnw_group_bits=config.fnw_group_bits,
    )


def run(config: SimConfig, trace: Trace | None = None) -> RunResult:
    """Execute one simulation and return aggregated results.

    Parameters
    ----------
    config:
        The run configuration.
    trace:
        Optional pre-generated trace (must match the config's workload and
        line size); omitted, the cached generator is used.
    """
    if trace is None:
        trace = cached_trace(
            config.workload, config.n_writes, config.seed, config.line_bytes
        )
    scheme = build_scheme(config)

    addresses = trace.addresses()
    for addr in addresses:
        scheme.install(addr, trace.initial[addr])

    meta_bits = scheme.metadata_bits_per_line
    pcm = PcmArray(
        line_bytes=config.line_bytes,
        meta_bits=meta_bits,
        track_per_line=config.track_per_line_wear,
    )
    region = config.hwl_region_lines or len(addresses)
    if config.wear_leveling == "sr-hwl":
        # Security Refresh remaps by XOR, so its region must be a power
        # of two; round down if the working set is not.
        while region & (region - 1):
            region &= region - 1
        region = max(region, 2)
    leveler = _build_leveler(config, region, pcm.bits_per_line)
    vwl = getattr(leveler, "startgap", None) or getattr(
        leveler, "refresh", None
    )
    line_index = {addr: i % region for i, addr in enumerate(addresses)}

    result = RunResult(
        workload=config.workload,
        scheme=config.scheme,
        n_writes=len(trace.records),
        line_bits=8 * config.line_bytes,
        meta_bits=meta_bits,
    )
    for record in trace.records:
        outcome = scheme.write(record.address, record.data)
        rotation = leveler.rotation(line_index[record.address])
        pcm.apply_write(outcome, rotation=rotation)
        if vwl is not None:
            vwl.on_write()

        result.total_flips += outcome.total_flips
        result.data_flips += outcome.data_flips
        result.meta_flips += outcome.metadata_flips
        result.set_flips += outcome.set_flips
        result.reset_flips += outcome.reset_flips
        slots = slots_for_write(outcome, 8 * config.line_bytes)
        result.total_slots += slots
        result.slot_histogram[slots] += 1
        result.total_words_reencrypted += outcome.words_reencrypted
        result.full_reencryptions += int(outcome.full_line_reencrypted)
        if outcome.mode:
            result.mode_histogram[outcome.mode] += 1

    result.wear = pcm.summary()
    result.lifetime = lifetime_report(
        result.wear.position_writes, result.wear.total_writes
    )
    pads = getattr(scheme, "pads", None)
    if isinstance(pads, CachingPadSource):
        result.pad_hits = pads.hits
        result.pad_misses = pads.misses
    return result


def run_suite(
    configs: list[SimConfig], trace: Trace | None = None
) -> list[RunResult]:
    """Run several configurations (sharing cached traces per workload)."""
    return [run(config, trace=trace) for config in configs]


def _build_leveler(config: SimConfig, n_lines: int, bits_per_line: int):
    if config.wear_leveling == "none":
        return NoWearLeveler()
    if config.wear_leveling in ("hwl", "hwl-hashed"):
        startgap = StartGap(n_lines, config.gap_write_interval)
        return HorizontalWearLeveler(
            startgap,
            bits_per_line,
            hashed=(config.wear_leveling == "hwl-hashed"),
        )
    if config.wear_leveling == "sr-hwl":
        refresh = SecurityRefresh(n_lines, config.gap_write_interval)
        return SecurityRefreshHWL(refresh, bits_per_line)
    raise ValueError(
        f"unknown wear_leveling mode {config.wear_leveling!r} "
        "(expected 'none', 'hwl', 'hwl-hashed', or 'sr-hwl')"
    )
