"""Durable checkpoint/resume for runs and sweeps.

A *run checkpoint* is an exact snapshot of every piece of mutable
simulation state at a write index: the scheme's line map and per-scheme
extras (counters, modified bits, mode bits), the PCM wear arrays, the
wear-leveling registers, the pad cache (contents, LRU order, and hit
counters), and the partial :class:`~repro.sim.results.RunResult`
aggregates.  The workload cursor is the write index itself — traces are
fully materialized, deterministic functions of ``(workload, n_writes,
seed, line_bytes)``, so resuming regenerates the identical stream and
continues from the saved index.  A resumed run is bit-identical to an
uninterrupted one; tests pin this per scheme.

On disk a checkpoint is two files in one directory:

* ``state-<index>.npz`` — every array leaf, keys namespaced as
  ``section/key`` (sections: ``scheme``, ``pcm``, ``leveler``, ``pads``).
* ``checkpoint.json`` — schema version, the full config, the write index,
  scalar state leaves, the partial result aggregates, and the name of the
  ``.npz`` it belongs to.

Writes are atomic and ordered so a crash at any instant leaves a loadable
checkpoint: the ``.npz`` lands first under a versioned name, then
``checkpoint.json`` is atomically replaced (the commit point), then stale
``.npz`` files are pruned.  No pickle anywhere — arrays and JSON only.

A *sweep checkpoint* (:class:`SweepCheckpoint`) is an append-only
``cells.jsonl`` of completed sweep cells keyed by config signature; a
resumed sweep re-runs only the missing cells.  A torn trailing line (the
appending process was SIGKILLed mid-write) is skipped on load.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.sim.config import SimConfig
from repro.sim.results import RunResult

#: Bump when the on-disk layout changes incompatibly.
CHECKPOINT_SCHEMA = 1

#: Subdirectory of a run's ledger artifact dir that holds its checkpoint.
RUN_CHECKPOINT_DIRNAME = "checkpoint"

_SECTIONS = ("scheme", "pcm", "leveler", "pads")


class CheckpointError(RuntimeError):
    """A checkpoint that cannot be saved, loaded, or resumed from."""


def config_signature(config: SimConfig) -> str:
    """Stable short hash of a config; keys sweep cells and resume checks."""
    payload = json.dumps(config.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class CellSpec:
    """One sweep cell as a wire-serializable unit of work.

    The fleet coordinator dispatches cells to remote workers as
    ``CellSpec``s; the worker re-validates the config through
    :meth:`SimConfig.from_dict <repro.sim.config.SimConfig.from_dict>`
    (and so through :mod:`repro.registry`), which is what makes a cell
    spec checkable without bespoke per-type code.  ``signature`` is the
    dedup/resume key — the same one :class:`SweepCheckpoint` rows use.
    """

    index: int
    config: SimConfig

    @property
    def signature(self) -> str:
        return config_signature(self.config)

    def to_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "config": self.config.to_dict(),
            "config_signature": self.signature,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellSpec":
        spec = cls(
            index=int(data["index"]),
            config=SimConfig.from_dict(data["config"]),
        )
        claimed = data.get("config_signature")
        if claimed is not None and str(claimed) != spec.signature:
            raise CheckpointError(
                f"cell spec signature mismatch: payload says {claimed!r} "
                f"but the config hashes to {spec.signature!r}"
            )
        return spec


@dataclass
class RunCheckpoint:
    """One run's complete mutable state at ``write_index`` applied writes."""

    config: SimConfig
    write_index: int
    result_state: dict[str, object]
    scheme_state: dict[str, object]
    pcm_state: dict[str, object]
    leveler_state: dict[str, object]
    pad_cache_state: dict[str, object] | None = None


def save_run_checkpoint(
    directory: str | Path, checkpoint: RunCheckpoint
) -> Path:
    """Atomically persist a checkpoint; returns the manifest path.

    Crash-safe at every instant: the new ``.npz`` is written under a
    versioned name before ``checkpoint.json`` is replaced, so an
    interrupted save leaves the previous (still consistent) checkpoint
    behind, and the stale-file prune afterwards is pure cleanup.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    scalars: dict[str, object] = {}
    sections = {
        "scheme": checkpoint.scheme_state,
        "pcm": checkpoint.pcm_state,
        "leveler": checkpoint.leveler_state,
        "pads": checkpoint.pad_cache_state,
    }
    for section, state in sections.items():
        if state is None:
            continue
        for key, value in state.items():
            full = f"{section}/{key}"
            if isinstance(value, np.ndarray):
                arrays[full] = value
            elif isinstance(value, (int, float, str, bool)) or value is None:
                scalars[full] = value
            else:
                raise CheckpointError(
                    f"state leaf {full!r} is neither an array nor a "
                    f"JSON-safe scalar: {type(value).__name__}"
                )

    npz_name = f"state-{checkpoint.write_index:012d}.npz"
    npz_tmp = directory / (npz_name + ".tmp")
    with open(npz_tmp, "wb") as fh:
        np.savez(fh, **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(npz_tmp, directory / npz_name)

    manifest = {
        "schema": CHECKPOINT_SCHEMA,
        "config": checkpoint.config.to_dict(),
        "config_signature": config_signature(checkpoint.config),
        "write_index": checkpoint.write_index,
        "state_file": npz_name,
        "result": checkpoint.result_state,
        "scalars": scalars,
    }
    manifest_path = directory / "checkpoint.json"
    json_tmp = directory / "checkpoint.json.tmp"
    with open(json_tmp, "w") as fh:
        json.dump(manifest, fh, sort_keys=True, indent=2)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(json_tmp, manifest_path)

    for stale in directory.glob("state-*.npz"):
        if stale.name != npz_name:
            stale.unlink(missing_ok=True)
    return manifest_path


def load_run_checkpoint(directory: str | Path) -> RunCheckpoint:
    """Load the checkpoint committed in ``directory``."""
    directory = Path(directory)
    manifest_path = directory / "checkpoint.json"
    if not manifest_path.is_file():
        raise CheckpointError(
            f"no checkpoint at {directory} (missing checkpoint.json)"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"corrupt checkpoint manifest {manifest_path}: {exc}"
        ) from exc
    schema = manifest.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"unsupported checkpoint schema {schema!r} "
            f"(this build reads schema {CHECKPOINT_SCHEMA})"
        )
    npz_path = directory / str(manifest["state_file"])
    if not npz_path.is_file():
        raise CheckpointError(f"checkpoint state file missing: {npz_path}")

    sections: dict[str, dict[str, object]] = {s: {} for s in _SECTIONS}
    with np.load(npz_path) as npz:
        for full in npz.files:
            section, _, key = full.partition("/")
            sections[section][key] = npz[full]
    for full, value in manifest.get("scalars", {}).items():
        section, _, key = str(full).partition("/")
        sections[section][key] = value

    return RunCheckpoint(
        config=SimConfig.from_dict(manifest["config"]),
        write_index=int(manifest["write_index"]),
        result_state=manifest["result"],
        scheme_state=sections["scheme"],
        pcm_state=sections["pcm"],
        leveler_state=sections["leveler"],
        # The pads section is written iff a pad cache existed; an encrypted
        # cache's state always carries hits/misses, so empty means absent.
        pad_cache_state=sections["pads"] or None,
    )


class RunCheckpointer:
    """Periodic snapshots of live simulation objects into a directory.

    Holds references to the scheme, PCM array, leveler, partial result,
    and (optionally) the pad cache; :meth:`maybe` saves whenever the write
    index hits a multiple of ``every``.  Saving only *reads* simulation
    state, so checkpointed and plain runs stay bit-identical.
    """

    def __init__(
        self,
        directory: str | Path,
        every: int,
        *,
        config: SimConfig,
        scheme,
        pcm,
        leveler,
        result: RunResult,
        pad_cache=None,
    ) -> None:
        if every < 1:
            raise ValueError("checkpoint interval must be >= 1 write")
        self.directory = Path(directory)
        self.every = every
        self.config = config
        self.scheme = scheme
        self.pcm = pcm
        self.leveler = leveler
        self.result = result
        self.pad_cache = pad_cache
        self.saves = 0

    def maybe(self, write_index: int) -> bool:
        """Save iff ``write_index`` completes a checkpoint interval."""
        if write_index % self.every:
            return False
        self.save(write_index)
        return True

    def save(self, write_index: int) -> None:
        checkpoint = RunCheckpoint(
            config=self.config,
            write_index=write_index,
            result_state=self.result.checkpoint_state(),
            scheme_state=self.scheme.state_dict(),
            pcm_state=self.pcm.state_dict(),
            leveler_state=self.leveler.state_dict(),
            pad_cache_state=(
                self.pad_cache.state_dict()
                if self.pad_cache is not None
                else None
            ),
        )
        save_run_checkpoint(self.directory, checkpoint)
        self.saves += 1


class SweepCheckpoint:
    """Append-only completed-cell record for fault-tolerant sweeps.

    Each completed cell appends one JSON line — its position, config
    signature, ledger run id (when recorded), and full
    ``RunResult.to_dict()`` payload — flushed and fsynced so a crash
    immediately after completion cannot lose the cell.  ``--resume``
    restores the finished cells and re-runs only the missing ones.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / "cells.jsonl"

    def load(self) -> dict[str, dict]:
        """Completed cells by config signature (raw records)."""
        completed: dict[str, dict] = {}
        if not self.path.is_file():
            return completed
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing line from a crash mid-append
            if isinstance(record, dict) and "config_signature" in record:
                completed[str(record["config_signature"])] = record
        return completed

    def restore(self) -> dict[str, RunResult]:
        """Completed cells as :class:`RunResult`s, by config signature."""
        return {
            signature: RunResult.from_dict(record["result"])
            for signature, record in self.load().items()
        }

    def record(
        self,
        index: int,
        config: SimConfig,
        result: RunResult,
        run_id: str = "",
    ) -> None:
        """Durably append one completed cell."""
        record = {
            "index": index,
            "config_signature": config_signature(config),
            "run_id": run_id,
            "result": result.to_dict(),
        }
        with open(self.path, "a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def merge_from(self, other: "SweepCheckpoint") -> int:
        """Absorb another checkpoint's cells; returns how many were new.

        Dedup is by config signature (first record wins — matching the
        load semantics where a signature maps to one row), so merging a
        per-worker or partial checkpoint into the coordinator's merged
        one is idempotent.  Appended rows keep their original index,
        run id, and result payload byte-for-byte.
        """
        seen = set(self.load())
        added = 0
        for signature, record in other.load().items():
            if signature in seen:
                continue
            with open(self.path, "a") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            seen.add(signature)
            added += 1
        return added
