"""Simulation configuration.

One :class:`SimConfig` pins everything that determines a run's outcome:
the workload, the scheme and its parameters, the trace length and seed, the
pad source, and the wear-leveling mode.  Identical configs produce identical
results.
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass, field, replace

#: Default trace length: long enough for flip statistics to converge to
#: well under a percentage point while keeping full-suite sweeps fast.
DEFAULT_N_WRITES = 20_000

#: Default secret key for pad sources (any bytes; simulations only).
DEFAULT_KEY = b"deuce-repro-key!"


class ConfigError(ValueError):
    """A config dict that cannot become a valid :class:`SimConfig`.

    Raised with messages meant for API/service clients: the offending key,
    what was expected, and a close-match suggestion for typos.
    """


#: Accepted runtime types per field, for :meth:`SimConfig.from_dict`.
#: ``key`` also accepts ``str`` (hex), normalized in ``__post_init__``.
_FIELD_TYPES: dict[str, tuple[type, ...]] = {
    "workload": (str,),
    "scheme": (str,),
    "n_writes": (int,),
    "seed": (int,),
    "pad_kind": (str,),
    "key": (bytes, str),
    "line_bytes": (int,),
    "word_bytes": (int,),
    "epoch_interval": (int,),
    "fnw_group_bits": (int,),
    "wear_leveling": (str,),
    "gap_write_interval": (int,),
    "hwl_region_lines": (int, type(None)),
    "track_per_line_wear": (bool,),
    "pad_cache_lines": (int,),
    "chunk_size": (int,),
    "workload_params": (dict,),
}


@dataclass(frozen=True)
class SimConfig:
    """Everything needed to reproduce one (workload, scheme) run.

    Attributes
    ----------
    workload:
        Table 2 benchmark name.
    scheme:
        Scheme registry name (see :data:`repro.schemes.SCHEME_NAMES`).
    n_writes:
        Writebacks to stream through the scheme.
    seed:
        Trace generator seed.
    pad_kind:
        ``"blake2"`` (fast surrogate, default) or ``"aes"`` (real cipher).
    key:
        Pad-source secret key.
    line_bytes / word_bytes / epoch_interval / fnw_group_bits:
        Scheme geometry; defaults are the paper's (64B lines, 2B DEUCE
        words, epoch 32, 16-bit FNW groups).
    wear_leveling:
        ``"none"``, ``"hwl"`` (Start-Gap-derived rotation), or
        ``"hwl-hashed"`` (footnote-2 keyed rotation).
    gap_write_interval:
        Start-Gap's ψ (writes per gap movement).
    hwl_region_lines:
        Lines per Start-Gap region.  Defaults to the trace's working set;
        set smaller to accelerate Start increments so a short simulated
        window exhibits the rotation coverage a real device accumulates
        over its lifetime (the paper's Start advances "several hundred
        thousand" times, section 5.3).
    track_per_line_wear:
        Keep the full (line, bit) wear matrix (needed for exact hottest-
        cell queries; the per-position aggregate is always kept).
    pad_cache_lines:
        Capacity (in cached line pads) of the LRU pad cache wrapped around
        the pad source; ``0`` disables caching.
    chunk_size:
        Writes the runner hands to ``scheme.write_batch`` at once when the
        scheme supports it.  ``1`` forces the serial per-write loop.
        Results are bit-identical at any value (chunks are cut at
        checkpoint, sampling, heartbeat, and wear-leveler boundaries, and
        epoch resets are handled inside the batch); larger chunks amortize
        dispatch overhead across the whole batch.
    workload_params:
        Per-workload parameter overrides (a KV profile's ``n_keys``,
        ``zipf_alpha``, mix weights, ...), validated against the
        workload plugin's declared :class:`~repro.registry.FieldSpec`
        schema at decode time.  Table 2 workloads declare no parameters,
        so any override there is rejected.
    """

    workload: str
    scheme: str
    n_writes: int = DEFAULT_N_WRITES
    seed: int = 0
    pad_kind: str = "blake2"
    key: bytes = DEFAULT_KEY
    line_bytes: int = 64
    word_bytes: int = 2
    epoch_interval: int = 32
    fnw_group_bits: int = 16
    wear_leveling: str = "none"
    gap_write_interval: int = 100
    hwl_region_lines: int | None = None
    track_per_line_wear: bool = False
    pad_cache_lines: int = 1024
    chunk_size: int = 512
    workload_params: dict = field(default_factory=dict)

    def __hash__(self) -> int:
        # The workload_params dict is the one unhashable field; fold it in
        # as sorted items so equal configs keep equal hashes.
        params = tuple(sorted(self.workload_params.items()))
        rest = tuple(
            getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name != "workload_params"
        )
        return hash((rest, params))

    def __post_init__(self) -> None:
        # Accept a hex string for ``key`` so configs survive JSON: to_dict
        # hex-encodes, and from_dict / with_(key="...") / direct
        # construction all land here and decode back to bytes.
        if isinstance(self.key, str):
            try:
                decoded = bytes.fromhex(self.key)
            except ValueError:
                raise ConfigError(
                    f"config key 'key' must be bytes or a hex string, "
                    f"got {self.key!r} (not valid hex)"
                ) from None
            object.__setattr__(self, "key", decoded)

    def with_(self, **changes: object) -> "SimConfig":
        """A modified copy (dataclasses.replace convenience).

        ``key`` may be given as bytes or a hex string; either round-trips.
        """
        return replace(self, **changes)  # type: ignore[arg-type]

    def to_dict(self) -> dict[str, object]:
        """A JSON-safe dict: every field, with ``key`` hex-encoded.

        The inverse of :meth:`from_dict`:
        ``SimConfig.from_dict(c.to_dict()) == c`` for every config.
        """
        data = dataclasses.asdict(self)
        data["key"] = self.key.hex()
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "SimConfig":
        """Build a config from a JSON-decoded dict, strictly validated.

        Unknown keys are rejected (with a did-you-mean suggestion), the
        required ``workload``/``scheme`` keys must be present, and every
        value must have the field's type (``key`` accepts a hex string).
        Raises :class:`ConfigError` with a message fit to echo back to an
        API client.
        """
        if not isinstance(data, dict):
            raise ConfigError(
                f"config must be a JSON object, got {type(data).__name__}"
            )
        names = [f.name for f in dataclasses.fields(cls)]
        unknown = [key for key in data if key not in names]
        if unknown:
            parts = []
            for key in unknown:
                close = difflib.get_close_matches(str(key), names, n=1)
                hint = f" (did you mean {close[0]!r}?)" if close else ""
                parts.append(f"{key!r}{hint}")
            raise ConfigError(
                "unknown config key(s): " + ", ".join(parts)
                + "; valid keys: " + ", ".join(names)
            )
        for required in ("workload", "scheme"):
            if required not in data:
                raise ConfigError(
                    f"missing required config key {required!r} "
                    "(a config needs at least 'workload' and 'scheme')"
                )
        for key, value in data.items():
            expected = _FIELD_TYPES[key]
            ok = isinstance(value, expected) and not (
                isinstance(value, bool) and bool not in expected
            )
            if not ok:
                wanted = " or ".join(t.__name__ for t in expected)
                raise ConfigError(
                    f"config key {key!r} expects {wanted}, "
                    f"got {type(value).__name__} ({value!r})"
                )
        # Backend names resolve through the uniform plugin registries, so
        # a typo'd scheme/workload/pad/leveler fails decode with the same
        # did-you-mean error everywhere a config dict enters the system
        # (CLI, Session, job service, fleet workers validating cell specs).
        from repro import registry

        try:
            registry.validate_config_names(
                scheme=str(data["scheme"]),
                workload=str(data["workload"]),
                pad_kind=(
                    str(data["pad_kind"]) if "pad_kind" in data else None
                ),
                wear_leveling=(
                    str(data["wear_leveling"])
                    if "wear_leveling" in data
                    else None
                ),
                workload_params=data.get("workload_params"),  # type: ignore[arg-type]
            )
        except registry.RegistryError as exc:
            raise ConfigError(str(exc)) from None
        return cls(**data)  # type: ignore[arg-type]
