"""Simulation configuration.

One :class:`SimConfig` pins everything that determines a run's outcome:
the workload, the scheme and its parameters, the trace length and seed, the
pad source, and the wear-leveling mode.  Identical configs produce identical
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Default trace length: long enough for flip statistics to converge to
#: well under a percentage point while keeping full-suite sweeps fast.
DEFAULT_N_WRITES = 20_000

#: Default secret key for pad sources (any bytes; simulations only).
DEFAULT_KEY = b"deuce-repro-key!"


@dataclass(frozen=True)
class SimConfig:
    """Everything needed to reproduce one (workload, scheme) run.

    Attributes
    ----------
    workload:
        Table 2 benchmark name.
    scheme:
        Scheme registry name (see :data:`repro.schemes.SCHEME_NAMES`).
    n_writes:
        Writebacks to stream through the scheme.
    seed:
        Trace generator seed.
    pad_kind:
        ``"blake2"`` (fast surrogate, default) or ``"aes"`` (real cipher).
    key:
        Pad-source secret key.
    line_bytes / word_bytes / epoch_interval / fnw_group_bits:
        Scheme geometry; defaults are the paper's (64B lines, 2B DEUCE
        words, epoch 32, 16-bit FNW groups).
    wear_leveling:
        ``"none"``, ``"hwl"`` (Start-Gap-derived rotation), or
        ``"hwl-hashed"`` (footnote-2 keyed rotation).
    gap_write_interval:
        Start-Gap's ψ (writes per gap movement).
    hwl_region_lines:
        Lines per Start-Gap region.  Defaults to the trace's working set;
        set smaller to accelerate Start increments so a short simulated
        window exhibits the rotation coverage a real device accumulates
        over its lifetime (the paper's Start advances "several hundred
        thousand" times, section 5.3).
    track_per_line_wear:
        Keep the full (line, bit) wear matrix (needed for exact hottest-
        cell queries; the per-position aggregate is always kept).
    pad_cache_lines:
        Capacity (in cached line pads) of the LRU pad cache wrapped around
        the pad source; ``0`` disables caching.
    """

    workload: str
    scheme: str
    n_writes: int = DEFAULT_N_WRITES
    seed: int = 0
    pad_kind: str = "blake2"
    key: bytes = DEFAULT_KEY
    line_bytes: int = 64
    word_bytes: int = 2
    epoch_interval: int = 32
    fnw_group_bits: int = 16
    wear_leveling: str = "none"
    gap_write_interval: int = 100
    hwl_region_lines: int | None = None
    track_per_line_wear: bool = False
    pad_cache_lines: int = 1024

    def with_(self, **changes: object) -> "SimConfig":
        """A modified copy (dataclasses.replace convenience)."""
        return replace(self, **changes)  # type: ignore[arg-type]
