"""Per-figure experiments: the code behind every table and figure.

Each ``fig*``/``table*`` function reproduces one exhibit from the paper's
evaluation (see DESIGN.md's experiment index) and returns an
:class:`ExperimentResult` holding per-workload rows, suite averages, and the
paper's reported numbers for side-by-side comparison.  The benchmark suite
calls these functions and prints their rendering; EXPERIMENTS.md records the
outcomes.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.analysis.tables import render_table
from repro.obs.progress import ProgressEvent
from repro.perf.energy import EnergyConfig, energy_report
from repro.perf.system import CoreConfig, simulate_execution
from repro.sim.config import SimConfig
from repro.sim.parallel import SweepCancelled, run_suite_parallel
from repro.sim.results import RunResult
from repro.sim.runner import run
from repro.workloads.profiles import (
    PAPER_TARGETS,
    PROFILES,
    WORKLOAD_NAMES,
    get_profile,
)
from repro.workloads.trace import generate_trace

#: Default writebacks per (workload, scheme) cell.  Flip statistics converge
#: to well under 1pp by a few thousand writes; benchmarks may pass more.
DEFAULT_WRITES = 5_000


def _timed(fn: Callable[..., "ExperimentResult"]):
    """Stamp ``wall_time_s`` on the returned result (unless already set).

    ``_scheme_sweep``-based exhibits time their sweep themselves; this
    decorator covers the hand-rolled ones (table3, fig12, fig14, ...) so
    every experiment's ledger manifest carries a real wall time.
    """

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        if not result.wall_time_s:
            result.wall_time_s = time.perf_counter() - t0
        return result

    return wrapper


@dataclass
class ExperimentResult:
    """Outcome of one figure/table reproduction.

    Attributes
    ----------
    exp_id:
        Paper exhibit id ("fig10", "table3", ...).
    title:
        Human-readable description.
    columns:
        Column order for rendering.
    rows:
        One dict per workload (or per configuration).
    averages:
        Suite averages keyed like row columns.
    paper:
        The paper's reported values for the same quantities (for the
        side-by-side in EXPERIMENTS.md).
    """

    exp_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, object]] = field(default_factory=list)
    averages: dict[str, float] = field(default_factory=dict)
    paper: dict[str, float] = field(default_factory=dict)
    #: End-to-end wall seconds of the producing sweep (ledger manifests).
    wall_time_s: float = 0.0
    #: The experiment-kind ledger manifest recorded for this result, when
    #: one was (set by repro.api.Session).
    manifest: object | None = None

    def render(self) -> str:
        out = [render_table(self.columns, self.rows, title=self.title)]
        if self.averages:
            avg_row = {self.columns[0]: "AVG", **self.averages}
            out.append(
                render_table(self.columns, [avg_row], title="Suite average:")
            )
        if self.paper:
            out.append(
                "Paper reports: "
                + ", ".join(f"{k}={v}" for k, v in self.paper.items())
            )
        return "\n\n".join(out)


def _scheme_sweep(
    exp_id: str,
    title: str,
    schemes: dict[str, Callable[[str], SimConfig]],
    paper: dict[str, float],
    value: Callable[[RunResult], float] = lambda r: r.avg_flips_pct,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    max_workers: int | None = 1,
    progress: Callable[[ProgressEvent], None] | None = None,
    ledger=None,
    should_stop: Callable[[], bool] | None = None,
) -> ExperimentResult:
    """Shared driver: run each scheme over each workload, tabulate a metric.

    The (workload, scheme) grid is materialized up front and dispatched
    through :func:`~repro.sim.parallel.run_suite_parallel`, so
    ``max_workers > 1`` fans cells out over processes; the default of 1 runs
    serially in-process.  Results are identical either way.  ``progress``
    (any :class:`~repro.obs.progress.ProgressEvent` consumer) receives live
    per-cell start/heartbeat/done events in both modes.  ``ledger`` (a
    :class:`~repro.obs.ledger.RunLedger`) records each cell as a sweep-cell
    manifest labelled with the exhibit id.
    """
    t0 = time.perf_counter()
    result = ExperimentResult(
        exp_id=exp_id,
        title=title,
        columns=["workload", *schemes],
        paper=paper,
    )
    cells = [
        (workload, label, make_config(workload))
        for workload in workloads
        for label, make_config in schemes.items()
    ]
    runs = run_suite_parallel(
        [config for _, _, config in cells],
        max_workers=max_workers,
        progress=progress,
        ledger=ledger,
        should_stop=should_stop,
        ledger_label=exp_id,
    )
    sums = dict.fromkeys(schemes, 0.0)
    rows: dict[str, dict[str, object]] = {
        workload: {"workload": workload} for workload in workloads
    }
    for (workload, label, _), r in zip(cells, runs):
        v = value(r)
        rows[workload][label] = round(v, 2)
        sums[label] += v
    result.rows = [rows[workload] for workload in workloads]
    result.averages = {
        label: round(total / len(workloads), 2) for label, total in sums.items()
    }
    result.wall_time_s = time.perf_counter() - t0
    return result


# -- Figure 1b / Figure 5 ----------------------------------------------------


@_timed
def fig5_encryption_overhead(
    n_writes: int = DEFAULT_WRITES,
    seed: int = 0,
    max_workers: int | None = 1,
    progress: Callable[[ProgressEvent], None] | None = None,
    ledger=None,
    should_stop: Callable[[], bool] | None = None,
) -> ExperimentResult:
    """Modified bits per write: NoEncr vs Encr under DCW and FNW."""
    mk = lambda scheme: lambda wl: SimConfig(wl, scheme, n_writes, seed)
    return _scheme_sweep(
        "fig5",
        "Fig 5: avg modified bits per write (%) — encryption costs ~4x",
        {
            "NoEncr-DCW": mk("noencr-dcw"),
            "NoEncr-FNW": mk("noencr-fnw"),
            "Encr-DCW": mk("encr-dcw"),
            "Encr-FNW": mk("encr-fnw"),
        },
        paper={
            "NoEncr-DCW": PAPER_TARGETS["avg_dcw_noencr_pct"],
            "NoEncr-FNW": PAPER_TARGETS["avg_fnw_noencr_pct"],
            "Encr-DCW": PAPER_TARGETS["avg_dcw_encr_pct"],
            "Encr-FNW": PAPER_TARGETS["avg_fnw_encr_pct"],
        },
        max_workers=max_workers,
        progress=progress,
        ledger=ledger,
        should_stop=should_stop,
    )


# -- Table 2 -------------------------------------------------------------------


@_timed
def table2_workloads() -> ExperimentResult:
    """Benchmark characteristics (model inputs, reported for completeness)."""
    result = ExperimentResult(
        exp_id="table2",
        title="Table 2: benchmark characteristics (8-copy rate mode)",
        columns=["workload", "read_mpki", "wbpki"],
    )
    for name in WORKLOAD_NAMES:
        p = PROFILES[name]
        result.rows.append(
            {"workload": name, "read_mpki": p.read_mpki, "wbpki": p.wbpki}
        )
    return result


# -- Figure 8: word-size sweep ---------------------------------------------------


@_timed
def fig8_word_size(
    n_writes: int = DEFAULT_WRITES,
    seed: int = 0,
    max_workers: int | None = 1,
    progress: Callable[[ProgressEvent], None] | None = None,
    ledger=None,
    should_stop: Callable[[], bool] | None = None,
) -> ExperimentResult:
    """DEUCE modified bits vs tracking granularity (1/2/4/8 bytes)."""
    mk = lambda wb: lambda wl: SimConfig(
        wl, "deuce", n_writes, seed, word_bytes=wb
    )
    return _scheme_sweep(
        "fig8",
        "Fig 8: DEUCE modified bits (%) vs tracking granularity (epoch 32)",
        {"1B": mk(1), "2B": mk(2), "4B": mk(4), "8B": mk(8)},
        paper={
            "1B": PAPER_TARGETS["deuce_word1_pct"],
            "2B": PAPER_TARGETS["deuce_word2_pct"],
            "4B": PAPER_TARGETS["deuce_word4_pct"],
            "8B": PAPER_TARGETS["deuce_word8_pct"],
        },
        max_workers=max_workers,
        progress=progress,
        ledger=ledger,
        should_stop=should_stop,
    )


# -- Figure 9: epoch-interval sweep -------------------------------------------------


@_timed
def fig9_epoch_interval(
    n_writes: int = DEFAULT_WRITES,
    seed: int = 0,
    max_workers: int | None = 1,
    progress: Callable[[ProgressEvent], None] | None = None,
    ledger=None,
    should_stop: Callable[[], bool] | None = None,
) -> ExperimentResult:
    """DEUCE modified bits vs epoch interval (8/16/32)."""
    mk = lambda ep: lambda wl: SimConfig(
        wl, "deuce", n_writes, seed, epoch_interval=ep
    )
    return _scheme_sweep(
        "fig9",
        "Fig 9: DEUCE modified bits (%) vs epoch interval (2B words)",
        {"epoch8": mk(8), "epoch16": mk(16), "epoch32": mk(32)},
        paper={
            "epoch8": PAPER_TARGETS["deuce_epoch8_pct"],
            "epoch16": PAPER_TARGETS["deuce_epoch16_pct"],
            "epoch32": PAPER_TARGETS["deuce_epoch32_pct"],
        },
        max_workers=max_workers,
        progress=progress,
        ledger=ledger,
        should_stop=should_stop,
    )


# -- Figure 10: scheme comparison ------------------------------------------------------


@_timed
def fig10_scheme_comparison(
    n_writes: int = DEFAULT_WRITES,
    seed: int = 0,
    max_workers: int | None = 1,
    progress: Callable[[ProgressEvent], None] | None = None,
    ledger=None,
    should_stop: Callable[[], bool] | None = None,
) -> ExperimentResult:
    """Bit flips across FNW, DEUCE, DynDEUCE, DEUCE+FNW, and NoEncr-FNW."""
    mk = lambda scheme: lambda wl: SimConfig(wl, scheme, n_writes, seed)
    return _scheme_sweep(
        "fig10",
        "Fig 10: bit flips per write (%) by scheme",
        {
            "Encr-FNW": mk("encr-fnw"),
            "DEUCE": mk("deuce"),
            "DynDEUCE": mk("dyndeuce"),
            "DEUCE+FNW": mk("deuce+fnw"),
            "NoEncr-FNW": mk("noencr-fnw"),
        },
        paper={
            "Encr-FNW": PAPER_TARGETS["avg_fnw_encr_pct"],
            "DEUCE": PAPER_TARGETS["avg_deuce_pct"],
            "DynDEUCE": PAPER_TARGETS["avg_dyndeuce_pct"],
            "DEUCE+FNW": PAPER_TARGETS["avg_deuce_fnw_pct"],
            "NoEncr-FNW": PAPER_TARGETS["avg_fnw_noencr_pct"],
        },
        max_workers=max_workers,
        progress=progress,
        ledger=ledger,
        should_stop=should_stop,
    )


# -- Table 3: storage overhead -----------------------------------------------------------


@_timed
def table3_storage_overhead(
    n_writes: int = DEFAULT_WRITES,
    seed: int = 0,
    max_workers: int | None = 1,
    progress: Callable[[ProgressEvent], None] | None = None,
    ledger=None,
    should_stop: Callable[[], bool] | None = None,
) -> ExperimentResult:
    """Per-line metadata bits vs average flip reduction."""
    from repro.sim.runner import build_scheme

    result = ExperimentResult(
        exp_id="table3",
        title="Table 3: storage overhead and effectiveness",
        columns=["scheme", "overhead_bits", "avg_flips_pct"],
        paper={
            "FNW": PAPER_TARGETS["avg_fnw_encr_pct"],
            "DEUCE": PAPER_TARGETS["avg_deuce_pct"],
            "DynDEUCE": PAPER_TARGETS["avg_dyndeuce_pct"],
            "DEUCE+FNW": PAPER_TARGETS["avg_deuce_fnw_pct"],
        },
    )
    entries = (
        ("FNW", "encr-fnw"),
        ("DEUCE", "deuce"),
        ("DynDEUCE", "dyndeuce"),
        ("DEUCE+FNW", "deuce+fnw"),
    )
    runs = run_suite_parallel(
        [
            SimConfig(workload, scheme, n_writes, seed)
            for _, scheme in entries
            for workload in WORKLOAD_NAMES
        ],
        max_workers=max_workers,
        progress=progress,
        ledger=ledger,
        should_stop=should_stop,
        ledger_label="table3",
    )
    per_scheme = len(WORKLOAD_NAMES)
    for i, (label, scheme) in enumerate(entries):
        chunk = runs[i * per_scheme: (i + 1) * per_scheme]
        total = sum(r.avg_flips_pct for r in chunk)
        overhead = build_scheme(
            SimConfig(WORKLOAD_NAMES[0], scheme)
        ).metadata_bits_per_line
        result.rows.append(
            {
                "scheme": label,
                "overhead_bits": overhead,
                "avg_flips_pct": round(total / per_scheme, 2),
            }
        )
    return result


# -- Figure 12: per-bit-position write skew ----------------------------------------------


@_timed
def fig12_bit_position_skew(
    n_writes: int = 3 * DEFAULT_WRITES,
    seed: int = 0,
    workloads: tuple[str, ...] = ("mcf", "libq"),
    max_workers: int | None = 1,
    progress: Callable[[ProgressEvent], None] | None = None,
    ledger=None,
    should_stop: Callable[[], bool] | None = None,
) -> ExperimentResult:
    """Writes per bit position, normalized to the per-position average."""
    result = ExperimentResult(
        exp_id="fig12",
        title="Fig 12: per-bit-position write skew (max/mean)",
        columns=["workload", "max_over_mean", "p99_over_mean"],
        paper={
            "mcf": PAPER_TARGETS["skew_mcf"],
            "libq": PAPER_TARGETS["skew_libq"],
        },
    )
    runs = run_suite_parallel(
        [
            SimConfig(workload, "noencr-dcw", n_writes, seed)
            for workload in workloads
        ],
        max_workers=max_workers,
        progress=progress,
        ledger=ledger,
        should_stop=should_stop,
        ledger_label="fig12",
    )
    for workload, r in zip(workloads, runs):
        positions = r.wear.position_writes[: r.line_bits].astype(float)
        mean = positions.mean() or 1.0
        result.rows.append(
            {
                "workload": workload,
                "max_over_mean": round(float(positions.max()) / mean, 1),
                "p99_over_mean": round(
                    float(np.percentile(positions, 99)) / mean, 1
                ),
            }
        )
    return result


def bit_position_profile(
    workload: str, n_writes: int = 3 * DEFAULT_WRITES, seed: int = 0
) -> np.ndarray:
    """The raw normalized per-position profile (for plotting/sparklines)."""
    r = run(SimConfig(workload, "noencr-dcw", n_writes, seed))
    positions = r.wear.position_writes[: r.line_bits].astype(float)
    return positions / (positions.mean() or 1.0)


# -- Figure 14: lifetime ------------------------------------------------------------------


@_timed
def fig14_lifetime(
    n_writes: int = 2 * DEFAULT_WRITES,
    seed: int = 0,
    working_set_lines: int = 128,
    hwl_region_lines: int = 16,
    gap_write_interval: int = 1,
    max_workers: int | None = 1,
    progress: Callable[[ProgressEvent], None] | None = None,
    ledger=None,
    should_stop: Callable[[], bool] | None = None,
) -> ExperimentResult:
    """Lifetime of FNW, DEUCE, and DEUCE+HWL normalized to encrypted memory.

    ``max_workers`` and ``progress`` are accepted for CLI uniformity but
    ignored: this exhibit feeds each run an explicitly generated
    shrunken-working-set trace, so the cells are not expressible as
    standalone configs.

    Uses a compact working set, a small Start-Gap region, and per-write gap
    movement so the Start register sweeps the full line width inside the
    simulated window — emulating the rotation coverage a real device
    accumulates over its lifetime (Start advances "several hundred
    thousand" times, section 5.3).  The HWL bar should track each
    workload's perfect-leveling bound (lifetime proportional to that
    workload's flip reduction); Gems and soplex stay near 1.0 because
    DEUCE cannot reduce their dense writes.
    """
    result = ExperimentResult(
        exp_id="fig14",
        title="Fig 14: lifetime normalized to encrypted memory",
        columns=["workload", "FNW", "DEUCE", "DEUCE-HWL"],
        paper={
            "FNW": PAPER_TARGETS["lifetime_fnw"],
            "DEUCE": PAPER_TARGETS["lifetime_deuce"],
            "DEUCE-HWL": PAPER_TARGETS["lifetime_deuce_hwl"],
        },
    )
    sums = {"FNW": 0.0, "DEUCE": 0.0, "DEUCE-HWL": 0.0}
    for wi, workload in enumerate(WORKLOAD_NAMES):
        if should_stop is not None and should_stop():
            raise SweepCancelled(
                f"fig14 cancelled before workload {wi}/{len(WORKLOAD_NAMES)}"
            )
        profile = replace(
            get_profile(workload), working_set_lines=working_set_lines
        )
        trace = generate_trace(profile, n_writes, seed=seed)
        configs = {
            "baseline": SimConfig(workload, "encr-dcw", n_writes, seed),
            "FNW": SimConfig(workload, "encr-fnw", n_writes, seed),
            "DEUCE": SimConfig(workload, "deuce", n_writes, seed),
            "DEUCE-HWL": SimConfig(
                workload,
                "deuce",
                n_writes,
                seed,
                wear_leveling="hwl",
                gap_write_interval=gap_write_interval,
                hwl_region_lines=hwl_region_lines,
            ),
        }
        rates = {
            label: run(cfg, trace=trace).lifetime.max_position_rate
            for label, cfg in configs.items()
        }
        row: dict[str, object] = {"workload": workload}
        for label in ("FNW", "DEUCE", "DEUCE-HWL"):
            norm = rates["baseline"] / rates[label]
            row[label] = round(norm, 2)
            sums[label] += norm
        result.rows.append(row)
    result.averages = {
        label: round(total / len(WORKLOAD_NAMES), 2)
        for label, total in sums.items()
    }
    return result


# -- Figure 15: write slots ------------------------------------------------------------------


@_timed
def fig15_write_slots(
    n_writes: int = DEFAULT_WRITES,
    seed: int = 0,
    max_workers: int | None = 1,
    progress: Callable[[ProgressEvent], None] | None = None,
    ledger=None,
    should_stop: Callable[[], bool] | None = None,
) -> ExperimentResult:
    """Average write slots consumed per write request."""
    mk = lambda scheme: lambda wl: SimConfig(wl, scheme, n_writes, seed)
    return _scheme_sweep(
        "fig15",
        "Fig 15: avg write slots per write (of 4)",
        {
            "Encr": mk("encr-dcw"),
            "Encr-FNW": mk("encr-fnw"),
            "DEUCE": mk("deuce"),
            "NoEncr": mk("noencr-dcw"),
            "NoEncr-FNW": mk("noencr-fnw"),
        },
        value=lambda r: r.avg_slots_per_write,
        paper={
            "Encr": PAPER_TARGETS["slots_encr"],
            "DEUCE": PAPER_TARGETS["slots_deuce"],
            "NoEncr": PAPER_TARGETS["slots_noencr"],
        },
        max_workers=max_workers,
        progress=progress,
        ledger=ledger,
        should_stop=should_stop,
    )


# -- Figure 16: speedup -----------------------------------------------------------------------


@_timed
def fig16_speedup(
    n_writes: int = DEFAULT_WRITES,
    seed: int = 0,
    instructions: int = 1_000_000,
    core: CoreConfig | None = None,
    max_workers: int | None = 1,
    progress: Callable[[ProgressEvent], None] | None = None,
    ledger=None,
    should_stop: Callable[[], bool] | None = None,
) -> ExperimentResult:
    """System speedup over the encrypted-memory baseline."""
    schemes = ("encr-dcw", "encr-fnw", "deuce", "noencr-fnw")
    labels = {"encr-fnw": "Encr-FNW", "deuce": "DEUCE", "noencr-fnw": "NoEncr-FNW"}
    result = ExperimentResult(
        exp_id="fig16",
        title="Fig 16: speedup vs encrypted memory",
        columns=["workload", *labels.values()],
        paper={
            "DEUCE": PAPER_TARGETS["speedup_deuce"],
            "NoEncr-FNW": PAPER_TARGETS["speedup_noencr_fnw"],
        },
    )
    sums = dict.fromkeys(labels.values(), 0.0)
    runs = run_suite_parallel(
        [
            SimConfig(workload, scheme, n_writes, seed)
            for workload in WORKLOAD_NAMES
            for scheme in schemes
        ],
        max_workers=max_workers,
        progress=progress,
        ledger=ledger,
        should_stop=should_stop,
        ledger_label="fig16",
    )
    for wi, workload in enumerate(WORKLOAD_NAMES):
        profile = get_profile(workload)
        execs = {}
        for si, scheme in enumerate(schemes):
            r = runs[wi * len(schemes) + si]
            execs[scheme] = simulate_execution(
                profile,
                r.slot_histogram,
                instructions=instructions,
                core=core,
                seed=seed,
                scheme=scheme,
            )
        base = execs["encr-dcw"]
        row: dict[str, object] = {"workload": workload}
        for scheme, label in labels.items():
            speedup = execs[scheme].speedup_over(base)
            row[label] = round(speedup, 3)
            sums[label] += speedup
        result.rows.append(row)
    result.averages = {
        label: round(total / len(WORKLOAD_NAMES), 3)
        for label, total in sums.items()
    }
    return result


# -- Figure 17: energy / power / EDP --------------------------------------------------------------


@_timed
def fig17_energy_power_edp(
    n_writes: int = DEFAULT_WRITES,
    seed: int = 0,
    instructions: int = 1_000_000,
    energy_config: EnergyConfig | None = None,
    max_workers: int | None = 1,
    progress: Callable[[ProgressEvent], None] | None = None,
    ledger=None,
    should_stop: Callable[[], bool] | None = None,
) -> ExperimentResult:
    """Speedup, memory energy, memory power, and EDP vs encrypted memory."""
    schemes = {"Encr-FNW": "encr-fnw", "DEUCE": "deuce", "NoEncr-FNW": "noencr-fnw"}
    result = ExperimentResult(
        exp_id="fig17",
        title="Fig 17: suite-average speedup/energy/power/EDP vs Encr",
        columns=["scheme", "speedup", "energy", "power", "edp"],
        paper={
            "DEUCE energy": 0.57,
            "DEUCE power": 0.72,
            "DEUCE edp": 0.57,
            "Encr-FNW energy": 0.89,
        },
    )
    sums: dict[str, dict[str, float]] = {
        label: {"speedup": 0.0, "energy": 0.0, "power": 0.0, "edp": 0.0}
        for label in schemes
    }
    cells = {"base": "encr-dcw", **schemes}
    runs = run_suite_parallel(
        [
            SimConfig(workload, scheme, n_writes, seed)
            for workload in WORKLOAD_NAMES
            for scheme in cells.values()
        ],
        max_workers=max_workers,
        progress=progress,
        ledger=ledger,
        should_stop=should_stop,
        ledger_label="fig17",
    )
    for wi, workload in enumerate(WORKLOAD_NAMES):
        profile = get_profile(workload)
        reports = {}
        for ci, (label, scheme) in enumerate(cells.items()):
            r = runs[wi * len(cells) + ci]
            ex = simulate_execution(
                profile,
                r.slot_histogram,
                instructions=instructions,
                seed=seed,
                scheme=scheme,
            )
            flips = r.avg_flips_per_write * ex.writes
            reports[label] = energy_report(
                workload,
                scheme,
                total_flips=int(flips),
                n_reads=ex.reads,
                exec_time_ns=ex.exec_time_ns,
                config=energy_config,
            )
        for label in schemes:
            rel = reports[label].relative_to(reports["base"])
            for metric in ("speedup", "energy", "power", "edp"):
                sums[label][metric] += rel[metric]
    for label in schemes:
        result.rows.append(
            {
                "scheme": label,
                **{
                    m: round(v / len(WORKLOAD_NAMES), 3)
                    for m, v in sums[label].items()
                },
            }
        )
    return result


# -- Figure 18: BLE --------------------------------------------------------------------------------


@_timed
def fig18_ble(
    n_writes: int = DEFAULT_WRITES,
    seed: int = 0,
    max_workers: int | None = 1,
    progress: Callable[[ProgressEvent], None] | None = None,
    ledger=None,
    should_stop: Callable[[], bool] | None = None,
) -> ExperimentResult:
    """Block-Level Encryption vs DEUCE vs their combination."""
    mk = lambda scheme: lambda wl: SimConfig(wl, scheme, n_writes, seed)
    return _scheme_sweep(
        "fig18",
        "Fig 18: bit flips (%) — BLE, DEUCE, BLE+DEUCE",
        {"BLE": mk("ble"), "DEUCE": mk("deuce"), "BLE+DEUCE": mk("ble+deuce")},
        paper={
            "BLE": PAPER_TARGETS["avg_ble_pct"],
            "DEUCE": PAPER_TARGETS["avg_deuce_pct"],
            "BLE+DEUCE": PAPER_TARGETS["avg_ble_deuce_pct"],
        },
        max_workers=max_workers,
        progress=progress,
        ledger=ledger,
        should_stop=should_stop,
    )


#: Registry used by the CLI: experiment id -> callable.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig5": fig5_encryption_overhead,
    "table2": table2_workloads,
    "fig8": fig8_word_size,
    "fig9": fig9_epoch_interval,
    "fig10": fig10_scheme_comparison,
    "table3": table3_storage_overhead,
    "fig12": fig12_bit_position_skew,
    "fig14": fig14_lifetime,
    "fig15": fig15_write_slots,
    "fig16": fig16_speedup,
    "fig17": fig17_energy_power_edp,
    "fig18": fig18_ble,
}
