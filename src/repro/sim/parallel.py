"""Parallel sweep engine: fan experiment cells out over worker processes.

Every paper exhibit reduces to a grid of independent (workload, scheme,
config) cells, each streaming thousands of writebacks through
:func:`repro.sim.runner.run`.  Cells share nothing but read-only inputs, so
the sweep is embarrassingly parallel: this module distributes
:class:`~repro.sim.config.SimConfig` cells (frozen dataclasses, hence
picklable) over a ``ProcessPoolExecutor``.

Guarantees:

* **Determinism** — results come back in submission order and each cell is
  a pure function of its config, so a parallel sweep returns bit-identical
  :class:`~repro.sim.results.RunResult`s to a serial one (there is a test
  for this).
* **Per-worker trace caching** — :func:`repro.sim.runner.cached_trace` is an
  ``lru_cache``, which is per-process; every worker that simulates several
  schemes of one workload generates that workload's trace once.
* **Serial fallback** — ``max_workers`` of ``0``/``1`` (or a single-cell
  sweep) runs inline in the calling process with no pool overhead, so
  callers can thread one knob through unconditionally.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from repro.sim.config import SimConfig
from repro.sim.results import RunResult

#: Upper bound on auto-selected workers; grids rarely have more useful
#: parallelism and oversubscribing a small container only adds overhead.
MAX_AUTO_WORKERS = 8


def resolve_workers(max_workers: int | None, n_cells: int) -> int:
    """Effective worker count for a sweep of ``n_cells`` cells.

    ``None`` auto-sizes to the machine (capped at :data:`MAX_AUTO_WORKERS`);
    explicit values are honoured but never exceed the number of cells.
    """
    if max_workers is None:
        max_workers = min(os.cpu_count() or 1, MAX_AUTO_WORKERS)
    if max_workers < 0:
        raise ValueError(f"max_workers must be >= 0, got {max_workers}")
    return max(1, min(max_workers, n_cells))


def _run_cell(config: SimConfig) -> RunResult:
    """Worker entry point: one simulation cell (module-level for pickling)."""
    from repro.sim.runner import run

    return run(config)


def run_suite_parallel(
    configs: Sequence[SimConfig],
    max_workers: int | None = None,
) -> list[RunResult]:
    """Run a batch of configs, fanned out over worker processes.

    Results are returned in the order of ``configs`` regardless of which
    worker finished first, and are bit-identical to
    :func:`repro.sim.runner.run_suite` on the same inputs.

    Parameters
    ----------
    configs:
        The experiment cells to run.
    max_workers:
        Process count; ``None`` auto-sizes to the machine, ``0``/``1``
        forces the serial fallback.
    """
    configs = list(configs)
    if not configs:
        return []
    workers = resolve_workers(max_workers, len(configs))
    if workers <= 1:
        from repro.sim.runner import run_suite

        return run_suite(configs)
    # Interleave cells across workers (chunksize 1): adjacent cells usually
    # share a workload trace, so striding them apart balances the cache-warm
    # work instead of handing one worker the whole workload.
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_cell, configs, chunksize=1))
