"""Parallel sweep engine: fan experiment cells out over worker processes.

Every paper exhibit reduces to a grid of independent (workload, scheme,
config) cells, each streaming thousands of writebacks through
:func:`repro.sim.runner.run`.  Cells share nothing but read-only inputs, so
the sweep is embarrassingly parallel: this module distributes
:class:`~repro.sim.config.SimConfig` cells (frozen dataclasses, hence
picklable) over a ``ProcessPoolExecutor``.

Guarantees:

* **Determinism** — results come back in submission order and each cell is
  a pure function of its config, so a parallel sweep returns bit-identical
  :class:`~repro.sim.results.RunResult`s to a serial one (there is a test
  for this).  Progress streaming never changes results: worker-side
  instrumentation is read-only.
* **Per-worker trace caching** — :func:`repro.sim.runner.cached_trace` is an
  ``lru_cache``, which is per-process; every worker that simulates several
  schemes of one workload generates that workload's trace once.
* **Serial fallback** — an effective worker count of 1 (or a single-cell
  sweep) runs inline in the calling process with no pool overhead, so
  callers can thread one knob through unconditionally.
* **Live progress** — pass ``progress=`` a callable (e.g. a
  :class:`~repro.obs.progress.ProgressRenderer`) and workers stream
  ``start``/``heartbeat``/``done`` :class:`~repro.obs.progress.ProgressEvent`
  records over a ``multiprocessing`` queue as each cell advances.

Worker-count conventions (unified for the CLI and the API): ``None`` *or*
``0`` auto-sizes to the machine (capped at :data:`MAX_AUTO_WORKERS`), ``1``
forces the serial fallback, any larger value is honoured but never exceeds
the number of cells.  Negative values are an error.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Sequence

from repro.obs.instruments import Instruments, RunAborted
from repro.obs.progress import DONE, HEARTBEAT, START, ProgressEvent
from repro.sim.config import SimConfig
from repro.sim.results import RunResult

#: Upper bound on auto-selected workers; grids rarely have more useful
#: parallelism and oversubscribing a small container only adds overhead.
MAX_AUTO_WORKERS = 8

#: Seconds between future polls while forwarding progress events.
_POLL_S = 0.1


class SweepCancelled(RuntimeError):
    """A sweep stopped cooperatively because ``should_stop`` went true.

    In the serial path the in-flight cell aborts mid-trace (via
    :class:`~repro.obs.instruments.RunAborted`); in the pool path cells not
    yet started are cancelled and already-running cells complete before the
    pool shuts down, so no worker process is ever orphaned.  ``results``
    holds the finished cells' :class:`RunResult`\\ s (submission order,
    ``None`` for unfinished cells).
    """

    def __init__(
        self, message: str, results: list[RunResult | None] | None = None
    ) -> None:
        super().__init__(message)
        self.results = results if results is not None else []


def resolve_workers(max_workers: int | None, n_cells: int) -> int:
    """Effective worker count for a sweep of ``n_cells`` cells.

    Accepts both historical conventions: ``None`` (the API's "pick for me")
    and ``0`` (the CLI's "auto") both auto-size to the machine, capped at
    :data:`MAX_AUTO_WORKERS`; ``1`` means serial; explicit counts are
    honoured but never exceed the number of cells.
    """
    if max_workers is None or max_workers == 0:
        max_workers = min(os.cpu_count() or 1, MAX_AUTO_WORKERS)
    if max_workers < 0:
        raise ValueError(f"max_workers must be >= 0 or None, got {max_workers}")
    return max(1, min(max_workers, n_cells))


def _run_cell(config: SimConfig) -> RunResult:
    """Worker entry point: one simulation cell (module-level for pickling)."""
    from repro.sim.runner import run

    return run(config)


def _run_cell_observed(
    index: int,
    config: SimConfig,
    n_cells: int,
    events,
    heartbeat_every: int,
) -> RunResult:
    """Worker entry point streaming progress events for one cell."""
    from repro.sim.runner import run

    def _event(kind: str, writes_done: int) -> ProgressEvent:
        return ProgressEvent(
            kind=kind,
            cell=index,
            n_cells=n_cells,
            writes_done=writes_done,
            n_writes=config.n_writes,
            workload=config.workload,
            scheme=config.scheme,
        )

    events.put(_event(START, 0))
    instruments = Instruments(
        heartbeat=lambda done, total: events.put(_event(HEARTBEAT, done)),
        heartbeat_every=heartbeat_every,
    )
    result = run(config, instruments=instruments)
    events.put(_event(DONE, config.n_writes))
    return result


def _drain(events, progress: Callable[[ProgressEvent], None]) -> None:
    while True:
        try:
            progress(events.get_nowait())
        except queue_mod.Empty:
            return


def _run_serial_observed(
    configs: list[SimConfig],
    progress: Callable[[ProgressEvent], None] | None,
    heartbeat_every: int,
    should_stop: Callable[[], bool] | None = None,
) -> list[RunResult]:
    """Serial fallback that still reports progress and honours cancellation."""
    from repro.sim.runner import run

    n = len(configs)
    results: list[RunResult | None] = []
    for i, config in enumerate(configs):
        if should_stop is not None and should_stop():
            raise SweepCancelled(
                f"sweep cancelled before cell {i}/{n}", results
            )

        def _event(kind: str, writes_done: int, c=config, i=i) -> ProgressEvent:
            return ProgressEvent(
                kind=kind,
                cell=i,
                n_cells=n,
                writes_done=writes_done,
                n_writes=c.n_writes,
                workload=c.workload,
                scheme=c.scheme,
            )

        heartbeat = None
        if progress is not None:
            progress(_event(START, 0))
            heartbeat = lambda done, total: progress(_event(HEARTBEAT, done))
        instruments = Instruments(
            heartbeat=heartbeat,
            heartbeat_every=heartbeat_every,
            abort=should_stop,
        )
        try:
            results.append(run(config, instruments=instruments))
        except RunAborted as exc:
            results.append(None)
            raise SweepCancelled(
                f"sweep cancelled in cell {i}/{n}: {exc}", results
            ) from exc
        if progress is not None:
            progress(_event(DONE, config.n_writes))
    return results  # type: ignore[return-value]


def run_suite_parallel(
    configs: Sequence[SimConfig],
    max_workers: int | None = None,
    progress: Callable[[ProgressEvent], None] | None = None,
    heartbeat_every: int = 0,
    ledger=None,
    ledger_label: str = "",
    should_stop: Callable[[], bool] | None = None,
) -> list[RunResult]:
    """Run a batch of configs, fanned out over worker processes.

    Results are returned in the order of ``configs`` regardless of which
    worker finished first, and are bit-identical to
    :func:`repro.sim.runner.run_suite` on the same inputs.

    Parameters
    ----------
    configs:
        The experiment cells to run.
    max_workers:
        Process count; ``None`` or ``0`` auto-sizes to the machine, ``1``
        forces the serial fallback (see :func:`resolve_workers`).
    progress:
        Optional callable receiving :class:`ProgressEvent` records as cells
        start, advance, and finish — live even while workers are mid-cell.
        Works in the serial fallback too (events arrive synchronously).
    heartbeat_every:
        Writes between per-cell heartbeat events; ``0`` auto-sizes to ~10
        heartbeats per cell.  Ignored when ``progress`` is ``None``.
    ledger:
        Optional :class:`~repro.obs.ledger.RunLedger`; when given, every
        cell's result is recorded as a ``kind="sweep-cell"`` manifest
        (labelled ``ledger_label``) after the sweep completes.  Recording
        happens in the parent process on the collected results, so it never
        affects worker execution or result identity.
    ledger_label:
        The ``label`` stamped on recorded sweep-cell manifests (typically
        the experiment id).
    should_stop:
        Optional ``() -> bool`` polled between cells (and, serially, every
        few hundred writes *within* a cell); when it goes true the sweep
        raises :class:`SweepCancelled` after letting in-flight worker cells
        finish, so no process is orphaned.  Job cancellation and per-job
        deadlines in :mod:`repro.service` are built on this hook.
    """
    results = _run_suite_parallel(
        configs, max_workers, progress, heartbeat_every, should_stop
    )
    if ledger is not None:
        for config, result in zip(configs, results):
            result.manifest = ledger.record_result(
                result, config, kind="sweep-cell", label=ledger_label
            )
    return results


def _collect_futures(
    futures: dict,
    results: list[RunResult | None],
    events,
    progress: Callable[[ProgressEvent], None] | None,
    should_stop: Callable[[], bool] | None,
) -> None:
    """Poll futures to completion, forwarding events and honouring stops."""
    pending = set(futures)
    while pending:
        done, pending = wait(
            pending, timeout=_POLL_S, return_when=FIRST_COMPLETED
        )
        if progress is not None:
            _drain(events, progress)
        for future in done:
            results[futures[future]] = future.result()
        if pending and should_stop is not None and should_stop():
            # Cooperative drain: unstarted cells are cancelled outright,
            # running cells finish (their results are kept) — the pool
            # always shuts down with zero orphaned workers.
            for future in pending:
                future.cancel()
            finished, _ = wait(pending)
            for future in finished:
                if not future.cancelled():
                    results[futures[future]] = future.result()
            if progress is not None:
                _drain(events, progress)
            n_done = sum(r is not None for r in results)
            raise SweepCancelled(
                f"sweep cancelled with {n_done}/{len(results)} cells "
                "finished",
                results,
            )


def _run_suite_parallel(
    configs: Sequence[SimConfig],
    max_workers: int | None,
    progress: Callable[[ProgressEvent], None] | None,
    heartbeat_every: int,
    should_stop: Callable[[], bool] | None = None,
) -> list[RunResult]:
    configs = list(configs)
    if not configs:
        return []
    workers = resolve_workers(max_workers, len(configs))
    if workers <= 1:
        if progress is None and should_stop is None:
            from repro.sim.runner import run_suite

            return run_suite(configs)
        return _run_serial_observed(
            configs, progress, heartbeat_every, should_stop
        )
    n = len(configs)
    results: list[RunResult | None] = [None] * n
    if progress is None:
        if should_stop is None:
            # Interleave cells across workers (chunksize 1): adjacent cells
            # usually share a workload trace, so striding them apart
            # balances the cache-warm work instead of handing one worker
            # the whole workload.
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(_run_cell, configs, chunksize=1))
        # Cancellable but unobserved: submit individually so pending cells
        # can be cancelled between polls.
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_cell, config): i
                for i, config in enumerate(configs)
            }
            _collect_futures(futures, results, None, None, should_stop)
        return results  # type: ignore[return-value]
    # Progress-streaming path: a manager queue carries events from workers;
    # the main process forwards them between future polls.  Results are
    # still collected by submission index, so ordering is unchanged.
    with multiprocessing.Manager() as manager:
        events = manager.Queue()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _run_cell_observed, i, config, n, events, heartbeat_every
                ): i
                for i, config in enumerate(configs)
            }
            _collect_futures(
                futures, results, events, progress, should_stop
            )
        # Workers enqueue their final event before returning, so one last
        # drain after the pool closes delivers everything.
        _drain(events, progress)
    return results  # type: ignore[return-value]
