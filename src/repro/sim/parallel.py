"""Parallel sweep engine: fan experiment cells out over worker processes.

Every paper exhibit reduces to a grid of independent (workload, scheme,
config) cells, each streaming thousands of writebacks through
:func:`repro.sim.runner.run`.  Cells share nothing but read-only inputs, so
the sweep is embarrassingly parallel: this module distributes
:class:`~repro.sim.config.SimConfig` cells (frozen dataclasses, hence
picklable) over a ``ProcessPoolExecutor``.

Guarantees:

* **Determinism** — results come back in submission order and each cell is
  a pure function of its config, so a parallel sweep returns bit-identical
  :class:`~repro.sim.results.RunResult`s to a serial one (there is a test
  for this).  Progress streaming never changes results: worker-side
  instrumentation is read-only.
* **Shared-memory traces** — the pool path materializes each unique
  workload trace once in the parent and publishes it into
  ``multiprocessing.shared_memory`` segments
  (:class:`~repro.sim.shm.TracePublisher`); workers receive only a tiny
  :class:`~repro.sim.shm.TraceShmSpec` and attach zero-copy
  :class:`~repro.workloads.trace.Trace` views, so no trace bytes are
  pickled to workers and no worker regenerates a trace.  If publishing or
  attaching fails (e.g. an exhausted ``/dev/shm``) the affected cells fall
  back to the per-process ``lru_cache`` of
  :func:`repro.sim.runner.cached_trace` — shared memory is an
  optimization, never a correctness dependency.
* **Serial fallback** — an effective worker count of 1 (or a single-cell
  sweep) runs inline in the calling process with no pool overhead, so
  callers can thread one knob through unconditionally.
* **Live progress** — pass ``progress=`` a callable (e.g. a
  :class:`~repro.obs.progress.ProgressRenderer`) and workers stream
  ``start``/``heartbeat``/``done`` :class:`~repro.obs.progress.ProgressEvent`
  records over a ``multiprocessing`` queue as each cell advances.
* **Fault tolerance** — ``retries`` grants each cell a retry budget spent
  under capped exponential backoff; a worker crash hard enough to break
  the process pool (SIGKILL, segfault, OOM kill) is detected, the pool is
  rebuilt, and the lost in-flight cells are requeued against the same
  budget.  A cell that exhausts its budget raises :class:`SweepCellFailed`
  carrying the partial results.
* **Durable progress** — pass ``checkpoint=`` a
  :class:`~repro.sim.checkpoint.SweepCheckpoint` (or its directory) and
  every completed cell is fsynced to ``cells.jsonl`` the moment it
  finishes; a re-run with the same checkpoint restores finished cells by
  config signature and runs only the missing ones.  Ledger recording
  (``ledger=``) is likewise incremental, in completion order, so a crashed
  sweep leaves every finished cell recorded.

Worker-count conventions (unified for the CLI and the API): ``None`` *or*
``0`` auto-sizes to the machine (capped at :data:`MAX_AUTO_WORKERS`), ``1``
forces the serial fallback, any larger value is honoured but never exceeds
the number of cells still to run.  Negative values are an error.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import queue as queue_mod
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.obs.context import TraceContext
from repro.obs.instruments import Instruments, RunAborted
from repro.obs.progress import DONE, HEARTBEAT, START, ProgressEvent
from repro.obs.tracing import NULL_TRACER, JsonlSink, NullTracer, Tracer
from repro.sim.checkpoint import SweepCheckpoint, config_signature
from repro.sim.config import SimConfig
from repro.sim.results import RunResult
from repro.sim.shm import TracePublisher, TraceShmSpec, attach_trace

#: Upper bound on auto-selected workers; grids rarely have more useful
#: parallelism and oversubscribing a small container only adds overhead.
MAX_AUTO_WORKERS = 8

#: Seconds between future polls while forwarding progress events.
_POLL_S = 0.1

#: Ceiling on the exponential retry backoff, whatever the attempt count.
_BACKOFF_CAP_S = 30.0


class SweepCancelled(RuntimeError):
    """A sweep stopped cooperatively because ``should_stop`` went true.

    In the serial path the in-flight cell aborts mid-trace (via
    :class:`~repro.obs.instruments.RunAborted`); in the pool path cells not
    yet started are cancelled and already-running cells complete before the
    pool shuts down, so no worker process is ever orphaned.  ``results``
    holds the finished cells' :class:`RunResult`\\ s (submission order,
    ``None`` for unfinished cells).
    """

    def __init__(
        self, message: str, results: list[RunResult | None] | None = None
    ) -> None:
        super().__init__(message)
        self.results = results if results is not None else []


class SweepCellFailed(RuntimeError):
    """A sweep cell failed on every attempt its retry budget allowed.

    Completed cells were already recorded to the ledger/checkpoint before
    this raised, so ``--resume`` re-runs only the failed and not-yet-run
    cells.  ``results`` holds the partial results (submission order,
    ``None`` for unfinished cells); ``index``/``config``/``attempts``
    identify the failing cell.  The final per-attempt error is chained as
    ``__cause__``.
    """

    def __init__(
        self,
        message: str,
        *,
        index: int,
        config: SimConfig,
        attempts: int,
        results: list[RunResult | None] | None = None,
    ) -> None:
        super().__init__(message)
        self.index = index
        self.config = config
        self.attempts = attempts
        self.results = results if results is not None else []


@dataclass
class SweepTracing:
    """Correlated-tracing hookup for one sweep.

    ``context`` is the sweep lane's :class:`TraceContext`; every worker
    cell becomes a *child* lane written to ``dir / cell-<i>.jsonl`` with
    its own re-anchored clock, so offline tools
    (:mod:`repro.obs.traceexport`) can merge all lanes onto one
    wall-clock axis and parent every worker span under the sweep span.
    ``tracer`` is the parent-process sweep lane (``cell.submit`` /
    ``cell.done`` scheduling events); it is never pickled — workers only
    receive the tiny dict from :meth:`cell_payload`.
    """

    dir: Path
    context: TraceContext
    tracer: Tracer | NullTracer = field(default=NULL_TRACER, repr=False)

    def cell_payload(self, index: int) -> dict:
        """Picklable per-cell payload riding in the worker submission."""
        return {
            "dir": str(self.dir),
            "ctx": self.context.to_dict(),
            "cell": index,
        }


def _cell_tracer(cell_trace: dict | None):
    """Build the worker-side lane tracer; ``(None, None)`` when untraced.

    Tracing must never fail a cell: any error opening the lane file
    degrades to an untraced run.
    """
    if not cell_trace:
        return None, None
    try:
        ctx = TraceContext.from_dict(cell_trace["ctx"]).child()
        name = f"cell-{cell_trace['cell']}"
        path = Path(cell_trace["dir"]) / f"{name}.jsonl"
        sink = JsonlSink(
            path,
            meta={**ctx.to_dict(), "lane": name, "cell": cell_trace["cell"]},
        )
        return Tracer(sink), ctx
    except Exception:
        return None, None


def resolve_workers(max_workers: int | None, n_cells: int) -> int:
    """Effective worker count for a sweep of ``n_cells`` cells.

    Accepts both historical conventions: ``None`` (the API's "pick for me")
    and ``0`` (the CLI's "auto") both auto-size to the machine, capped at
    :data:`MAX_AUTO_WORKERS`; ``1`` means serial; explicit counts are
    honoured but never exceed the number of cells.
    """
    if max_workers is None or max_workers == 0:
        max_workers = min(os.cpu_count() or 1, MAX_AUTO_WORKERS)
    if max_workers < 0:
        raise ValueError(f"max_workers must be >= 0 or None, got {max_workers}")
    return max(1, min(max_workers, n_cells))


def _backoff_delay(attempt: int, base_s: float) -> float:
    """Capped exponential backoff before retry ``attempt`` (1-based)."""
    return min(_BACKOFF_CAP_S, base_s * (2 ** (attempt - 1)))


class RetryBudget:
    """Per-cell retry accounting with capped exponential backoff.

    One mechanism shared by the local pool scheduler and the fleet
    coordinator (:mod:`repro.service.coordinator`): a failed attempt —
    a cell exception, a crashed pool worker, or a dead fleet endpoint —
    is *charged* against the cell's budget and either earns a backoff
    delay before requeue or raises :class:`SweepCellFailed` carrying the
    partial results, so both executors fail and resume identically.
    """

    def __init__(
        self,
        configs: Sequence[SimConfig],
        indices: Iterable[int],
        retries: int,
        backoff_s: float,
    ) -> None:
        self.configs = configs
        self.retries = retries
        self.backoff_s = backoff_s
        self.attempts: dict[int, int] = dict.fromkeys(indices, 0)

    def charge(
        self,
        index: int,
        exc: BaseException,
        *,
        results: "list[RunResult | None]",
    ) -> float:
        """Spend one retry; return the backoff delay or fail the sweep."""
        attempts = self.attempts[index] = self.attempts.get(index, 0) + 1
        if attempts > self.retries:
            config = self.configs[index]
            raise SweepCellFailed(
                f"cell {index}/{len(self.configs)} "
                f"({config.workload}/{config.scheme}) "
                f"failed after {attempts} attempt(s): {exc}",
                index=index,
                config=config,
                attempts=attempts,
                results=list(results),
            ) from exc
        return _backoff_delay(attempts, self.backoff_s)


def _worker_trace(spec: TraceShmSpec | None):
    """Attach a published trace, or ``None`` to regenerate locally.

    Attach failures (the parent's segment vanished, a platform without
    POSIX shared memory) degrade to the pre-shared-memory behaviour:
    ``run(config)`` falls back to its per-process ``cached_trace``.
    """
    if spec is None:
        return None
    try:
        return attach_trace(spec)
    except Exception:
        return None


def _run_cell(
    config: SimConfig,
    trace_spec: TraceShmSpec | None = None,
    cell_trace: dict | None = None,
) -> RunResult:
    """Worker entry point: one simulation cell (module-level for pickling)."""
    from repro.sim.runner import run

    tracer, _ctx = _cell_tracer(cell_trace)
    if tracer is None:
        return run(config, trace=_worker_trace(trace_spec))
    try:
        instruments = Instruments(tracer=tracer, per_write_spans=False)
        with tracer.span(
            "cell.run",
            cell=cell_trace["cell"],
            workload=config.workload,
            scheme=config.scheme,
        ):
            return run(
                config,
                trace=_worker_trace(trace_spec),
                instruments=instruments,
            )
    finally:
        tracer.close()


def _run_cell_observed(
    index: int,
    config: SimConfig,
    n_cells: int,
    events,
    heartbeat_every: int,
    trace_spec: TraceShmSpec | None = None,
    cell_trace: dict | None = None,
) -> RunResult:
    """Worker entry point streaming progress events for one cell."""
    from repro.sim.runner import run

    def _event(kind: str, writes_done: int) -> ProgressEvent:
        return ProgressEvent(
            kind=kind,
            cell=index,
            n_cells=n_cells,
            writes_done=writes_done,
            n_writes=config.n_writes,
            workload=config.workload,
            scheme=config.scheme,
        )

    events.put(_event(START, 0))
    tracer, _ctx = _cell_tracer(cell_trace)
    instruments = Instruments(
        heartbeat=lambda done, total: events.put(_event(HEARTBEAT, done)),
        heartbeat_every=heartbeat_every,
        tracer=tracer if tracer is not None else NULL_TRACER,
        per_write_spans=False,
    )
    try:
        if tracer is None:
            result = run(
                config, trace=_worker_trace(trace_spec),
                instruments=instruments,
            )
        else:
            with tracer.span(
                "cell.run",
                cell=index,
                workload=config.workload,
                scheme=config.scheme,
            ):
                result = run(
                    config, trace=_worker_trace(trace_spec),
                    instruments=instruments,
                )
    finally:
        if tracer is not None:
            tracer.close()
    events.put(_event(DONE, config.n_writes))
    return result


def _drain(events, progress: Callable[[ProgressEvent], None]) -> None:
    while True:
        try:
            progress(events.get_nowait())
        except queue_mod.Empty:
            return


def run_suite_parallel(
    configs: Sequence[SimConfig],
    max_workers: int | None = None,
    progress: Callable[[ProgressEvent], None] | None = None,
    heartbeat_every: int = 0,
    ledger=None,
    ledger_label: str = "",
    should_stop: Callable[[], bool] | None = None,
    *,
    retries: int = 0,
    retry_backoff_s: float = 0.5,
    checkpoint: "SweepCheckpoint | str | None" = None,
    tracing: SweepTracing | None = None,
) -> list[RunResult]:
    """Run a batch of configs, fanned out over worker processes.

    Results are returned in the order of ``configs`` regardless of which
    worker finished first, and are bit-identical to
    :func:`repro.sim.runner.run_suite` on the same inputs.

    Parameters
    ----------
    configs:
        The experiment cells to run.
    max_workers:
        Process count; ``None`` or ``0`` auto-sizes to the machine, ``1``
        forces the serial fallback (see :func:`resolve_workers`).
    progress:
        Optional callable receiving :class:`ProgressEvent` records as cells
        start, advance, and finish — live even while workers are mid-cell.
        Works in the serial fallback too (events arrive synchronously).
    heartbeat_every:
        Writes between per-cell heartbeat events; ``0`` auto-sizes to ~10
        heartbeats per cell.  Ignored when ``progress`` is ``None``.
    ledger:
        Optional :class:`~repro.obs.ledger.RunLedger`; when given, every
        cell's result is recorded as a ``kind="sweep-cell"`` manifest
        (labelled ``ledger_label``) the moment the cell completes, so a
        crashed or cancelled sweep leaves all finished cells recorded.
        Recording happens in the parent process on the collected results,
        so it never affects worker execution or result identity.
    ledger_label:
        The ``label`` stamped on recorded sweep-cell manifests (typically
        the experiment id).
    should_stop:
        Optional ``() -> bool`` polled between cells (and, serially, every
        few hundred writes *within* a cell); when it goes true the sweep
        raises :class:`SweepCancelled` after letting in-flight worker cells
        finish, so no process is orphaned.  Job cancellation and per-job
        deadlines in :mod:`repro.service` are built on this hook.
    retries:
        Retry budget per cell.  A cell whose attempt raises (including
        being lost to a crashed worker) is requeued after capped
        exponential backoff until the budget is spent, then the sweep
        raises :class:`SweepCellFailed`.  ``0`` (the default) fails fast.
    retry_backoff_s:
        Base backoff: retry ``k`` waits ``min(30, retry_backoff_s * 2**(k-1))``
        seconds.
    checkpoint:
        Optional :class:`~repro.sim.checkpoint.SweepCheckpoint` (or the
        directory to hold one).  Completed cells are durably appended as
        they finish; on entry, cells whose config signature is already
        recorded are restored from the checkpoint instead of re-run.
        Restored results are exact for every simulation aggregate but
        carry no raw wear/lifetime/series detail (the headline
        ``lifetime_norm`` survives via the stored summary).
    tracing:
        Optional :class:`SweepTracing`: each worker cell writes a child
        trace lane (``cell-<i>.jsonl``) under ``tracing.dir`` and the
        parent lane records ``cell.submit``/``cell.done`` scheduling
        events, so the whole sweep exports as one correlated trace.
        Tracing is read-only and best-effort; results are unchanged.
    """
    configs = list(configs)
    if not configs:
        return []
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if checkpoint is not None and not isinstance(checkpoint, SweepCheckpoint):
        checkpoint = SweepCheckpoint(checkpoint)

    n = len(configs)
    results: list[RunResult | None] = [None] * n
    if checkpoint is not None:
        restored = checkpoint.restore()
        for i, config in enumerate(configs):
            hit = restored.get(config_signature(config))
            if hit is not None:
                results[i] = hit
    todo = [i for i in range(n) if results[i] is None]
    if not todo:
        return results  # type: ignore[return-value]

    def on_complete(index: int, result: RunResult) -> None:
        """Record one finished cell durably, the moment it finishes."""
        config = configs[index]
        if tracing is not None:
            tracing.tracer.event(
                "cell.done", cell=index, workload=config.workload,
                scheme=config.scheme,
            )
        if ledger is not None:
            result.manifest = ledger.record_result(
                result, config, kind="sweep-cell", label=ledger_label
            )
        if checkpoint is not None:
            run_id = result.manifest.run_id if result.manifest else ""
            checkpoint.record(index, config, result, run_id=run_id)

    if tracing is not None:
        Path(tracing.dir).mkdir(parents=True, exist_ok=True)
    workers = resolve_workers(max_workers, len(todo))
    if workers <= 1:
        _run_serial(
            configs, todo, results, progress, heartbeat_every,
            should_stop, retries, retry_backoff_s, on_complete, tracing,
        )
    else:
        # Publish each unique trace into shared memory once; workers get a
        # tiny spec per cell and attach zero-copy instead of regenerating.
        # The publisher outlives the pool (workers hold live mappings) and
        # unlinks every segment on the way out, success or failure.
        with TracePublisher() as publisher:
            todo_set = set(todo)
            specs = [
                publisher.publish(configs[i]) if i in todo_set else None
                for i in range(n)
            ]
            _run_pool(
                configs, specs, todo, results, workers, progress,
                heartbeat_every, should_stop, retries, retry_backoff_s,
                on_complete, tracing,
            )
    return results  # type: ignore[return-value]


def _run_serial(
    configs: list[SimConfig],
    todo: list[int],
    results: list[RunResult | None],
    progress: Callable[[ProgressEvent], None] | None,
    heartbeat_every: int,
    should_stop: Callable[[], bool] | None,
    retries: int,
    backoff_s: float,
    on_complete: Callable[[int, RunResult], None],
    tracing: SweepTracing | None = None,
) -> None:
    """Serial fallback: same retry, progress, and cancellation semantics."""
    from repro.sim.runner import run

    n = len(configs)
    for i in todo:
        config = configs[i]
        if should_stop is not None and should_stop():
            raise SweepCancelled(
                f"sweep cancelled before cell {i}/{n}", list(results)
            )
        if tracing is not None:
            tracing.tracer.event(
                "cell.submit", cell=i, workload=config.workload,
                scheme=config.scheme,
            )

        def _event(kind: str, writes_done: int, c=config, i=i) -> ProgressEvent:
            return ProgressEvent(
                kind=kind,
                cell=i,
                n_cells=n,
                writes_done=writes_done,
                n_writes=c.n_writes,
                workload=c.workload,
                scheme=c.scheme,
            )

        attempt = 0
        while True:
            instruments = None
            cell_tracer = None
            if tracing is not None:
                cell_tracer, _ctx = _cell_tracer(tracing.cell_payload(i))
            if (
                progress is not None
                or should_stop is not None
                or cell_tracer is not None
            ):
                heartbeat = None
                if progress is not None:
                    progress(_event(START, 0))
                    heartbeat = lambda done, total, _e=_event: progress(
                        _e(HEARTBEAT, done)
                    )
                instruments = Instruments(
                    heartbeat=heartbeat,
                    heartbeat_every=heartbeat_every,
                    abort=should_stop,
                    tracer=(
                        cell_tracer if cell_tracer is not None else NULL_TRACER
                    ),
                    per_write_spans=False,
                )
            try:
                if cell_tracer is not None:
                    with cell_tracer.span(
                        "cell.run", cell=i, workload=config.workload,
                        scheme=config.scheme,
                    ):
                        result = run(config, instruments=instruments)
                else:
                    result = run(config, instruments=instruments)
            except RunAborted as exc:
                raise SweepCancelled(
                    f"sweep cancelled in cell {i}/{n}: {exc}", list(results)
                ) from exc
            except Exception as exc:
                attempt += 1
                if attempt > retries:
                    raise SweepCellFailed(
                        f"cell {i}/{n} ({config.workload}/{config.scheme}) "
                        f"failed after {attempt} attempt(s): {exc}",
                        index=i,
                        config=config,
                        attempts=attempt,
                        results=list(results),
                    ) from exc
                time.sleep(_backoff_delay(attempt, backoff_s))
                continue
            finally:
                if cell_tracer is not None:
                    cell_tracer.close()
            break
        results[i] = result
        on_complete(i, result)
        if progress is not None:
            progress(_event(DONE, config.n_writes))


def _run_pool(
    configs: list[SimConfig],
    specs: list["TraceShmSpec | None"],
    todo: list[int],
    results: list[RunResult | None],
    workers: int,
    progress: Callable[[ProgressEvent], None] | None,
    heartbeat_every: int,
    should_stop: Callable[[], bool] | None,
    retries: int,
    backoff_s: float,
    on_complete: Callable[[int, RunResult], None],
    tracing: SweepTracing | None = None,
) -> None:
    """Pool front-end: sets up the event queue iff progress is wanted."""
    if progress is None:
        _run_pool_scheduler(
            configs, specs, todo, results, workers, None, None,
            heartbeat_every, should_stop, retries, backoff_s, on_complete,
            tracing,
        )
        return
    # A manager queue carries events from workers; the main process
    # forwards them between future polls.  Results are still collected by
    # submission index, so ordering is unchanged.
    with multiprocessing.Manager() as manager:
        events = manager.Queue()
        _run_pool_scheduler(
            configs, specs, todo, results, workers, events, progress,
            heartbeat_every, should_stop, retries, backoff_s, on_complete,
            tracing,
        )


def _run_pool_scheduler(
    configs: list[SimConfig],
    specs: list["TraceShmSpec | None"],
    todo: list[int],
    results: list[RunResult | None],
    workers: int,
    events,
    progress: Callable[[ProgressEvent], None] | None,
    heartbeat_every: int,
    should_stop: Callable[[], bool] | None,
    retries: int,
    backoff_s: float,
    on_complete: Callable[[int, RunResult], None],
    tracing: SweepTracing | None = None,
) -> None:
    """The fault-tolerant scheduler shared by all pool paths.

    Cells move between three places: ``ready`` (submit at the next
    opportunity), ``delayed`` (a backoff heap of ``(ready_at, index)``),
    and ``futures`` (in flight).  A cell whose attempt raises is charged
    one attempt and pushed onto the backoff heap; a
    :class:`BrokenProcessPool` kills every in-flight future, so the pool
    is rebuilt and all lost cells are charged and requeued together (the
    executor cannot say which cell crashed the worker).
    """
    n = len(configs)
    ready: deque[int] = deque(todo)
    delayed: list[tuple[float, int]] = []
    futures: dict = {}
    budget = RetryBudget(configs, todo, retries, backoff_s)
    pool = ProcessPoolExecutor(max_workers=workers)

    def submit(index: int) -> None:
        config = configs[index]
        spec = specs[index]
        cell_trace = (
            tracing.cell_payload(index) if tracing is not None else None
        )
        if tracing is not None:
            tracing.tracer.event(
                "cell.submit", cell=index, workload=config.workload,
                scheme=config.scheme,
            )
        if events is not None:
            future = pool.submit(
                _run_cell_observed, index, config, n, events,
                heartbeat_every, spec, cell_trace,
            )
        else:
            future = pool.submit(_run_cell, config, spec, cell_trace)
        futures[future] = index

    def charge(index: int, exc: BaseException) -> float:
        return budget.charge(index, exc, results=results)

    try:
        while ready or delayed or futures:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                ready.append(heapq.heappop(delayed)[1])

            broken: BaseException | None = None
            lost: list[int] = []  # submitted cells whose worker crashed
            while ready and broken is None:
                index = ready.popleft()
                try:
                    submit(index)
                except BrokenProcessPool as exc:
                    # Never submitted: back in line, no attempt charged.
                    broken = exc
                    ready.appendleft(index)

            if broken is None and futures:
                done, _ = wait(
                    set(futures), timeout=_POLL_S, return_when=FIRST_COMPLETED
                )
                if progress is not None:
                    _drain(events, progress)
                for future in done:
                    index = futures.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        broken = exc
                        lost.append(index)
                    except Exception as exc:
                        delay = charge(index, exc)
                        heapq.heappush(
                            delayed, (time.monotonic() + delay, index)
                        )
                    else:
                        results[index] = result
                        on_complete(index, result)
            elif broken is None and delayed:
                # Everything left is waiting out a backoff.
                pause = delayed[0][0] - time.monotonic()
                time.sleep(max(0.0, min(_POLL_S, pause)))

            if broken is not None:
                # A worker died hard (SIGKILL/segfault/OOM): the pool is
                # unusable and every in-flight future is lost.  Rebuild the
                # pool and requeue the lost cells against their budgets.
                lost.extend(futures.values())
                futures.clear()
                pool.shutdown(wait=False)
                pool = ProcessPoolExecutor(max_workers=workers)
                base = time.monotonic()
                for index in lost:
                    heapq.heappush(
                        delayed, (base + charge(index, broken), index)
                    )

            if (
                (ready or delayed or futures)
                and should_stop is not None
                and should_stop()
            ):
                # Cooperative drain: unstarted cells are cancelled outright,
                # running cells finish (their results are kept and recorded)
                # — the pool always shuts down with zero orphaned workers.
                for future in futures:
                    future.cancel()
                finished, _ = wait(set(futures))
                for future in finished:
                    if future.cancelled():
                        continue
                    index = futures[future]
                    try:
                        results[index] = future.result()
                    except Exception:
                        continue  # cancelling anyway; drop the attempt
                    on_complete(index, results[index])
                if progress is not None:
                    _drain(events, progress)
                n_done = sum(r is not None for r in results)
                raise SweepCancelled(
                    f"sweep cancelled with {n_done}/{len(results)} cells "
                    "finished",
                    list(results),
                )
    finally:
        pool.shutdown(wait=True)
        if progress is not None:
            # Workers enqueue their final event before returning, so one
            # last drain after the pool closes delivers everything.
            _drain(events, progress)
