"""Uniform named-plugin registries for every configurable backend.

Schemes, wear levelers, pad sources, and workloads are all selected by
name in :class:`~repro.sim.config.SimConfig`.  Before this module each
family had its own bespoke lookup (``SCHEME_REGISTRY.get`` in the runner,
an ``if``/``elif`` chain for wear levelers, :func:`make_pad_source`'s
two-way branch, ``PROFILES[...]`` for workloads) with four different
error-message shapes.  They now share one mechanism:

* :class:`Registry` — an ordered name -> :class:`PluginSpec` table with
  did-you-mean errors (:class:`RegistryError` carries the suggestion).
* :data:`SCHEMES`, :data:`WEAR_LEVELERS`, :data:`PAD_SOURCES`,
  :data:`WORKLOADS` — the four populated registries.

Each :class:`PluginSpec` records the plugin's factory plus a ``schema``
(the tuple of :class:`~repro.sim.config.SimConfig` field names the factory
reads) and ``params`` — a tuple of :class:`FieldSpec` declaring the
plugin's *own* keyword parameters with types, ranges, and enums.
:meth:`Registry.validate` checks a params dict against those declarations
and raises one uniform :class:`RegistryError` whose message names the
offending field path (``workload_params.zipf_alpha: ...``), so
``SimConfig.from_dict``, :class:`~repro.api.Session`, the CLI, and the
``/v1`` service all reject an invalid value with the identical message.

Out-of-tree plugins register through the ``importlib.metadata`` entry
point group :data:`ENTRY_POINT_GROUP` (``deuce_sim.plugins``): each entry
point resolves to a callable invoked with the registry mapping
(:data:`REGISTRIES`), letting external packages add schemes or workloads
without editing this repo.

Downstream lookups (``build_scheme``, ``_build_leveler``,
``make_pad_source``, ``get_profile``, ``SimConfig.from_dict`` name
validation) all resolve through these registries, so registering a new
plugin here is the single step needed to make it constructible from a
config dict, a CLI flag, or a service payload.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

__all__ = [
    "ENTRY_POINT_GROUP",
    "PAD_SOURCES",
    "REGISTRIES",
    "SCHEMES",
    "WEAR_LEVELERS",
    "WORKLOADS",
    "FieldSpec",
    "PluginSpec",
    "Registry",
    "RegistryError",
    "load_entry_point_plugins",
    "validate_config_names",
]

#: ``importlib.metadata`` entry-point group scanned for external plugins.
ENTRY_POINT_GROUP = "deuce_sim.plugins"


class RegistryError(ValueError):
    """Invalid plugin name or parameter value.

    ``suggestion`` holds the closest name match (or "") for unknown-name
    errors; parameter errors carry the full field path in the message
    (e.g. ``workload_params.zipf_alpha: expected float, got str``).
    """

    def __init__(self, message: str, *, suggestion: str = "") -> None:
        super().__init__(message)
        self.suggestion = suggestion


#: Accepted runtime types per declared FieldSpec type name.  ``float``
#: accepts ints (JSON has one number type); ``bool`` is never accepted
#: where ``int`` is declared (Python's bool-is-int would let ``true``
#: sneak into counters).
_PARAM_TYPES: dict[str, tuple[type, ...]] = {
    "int": (int,),
    "float": (int, float),
    "str": (str,),
    "bool": (bool,),
}


@dataclass(frozen=True)
class FieldSpec:
    """One declared plugin parameter: its type, range, and enum.

    Attributes
    ----------
    name:
        Parameter keyword (the key in a params dict).
    type:
        ``"int"``, ``"float"``, ``"str"``, or ``"bool"``.  ``float``
        accepts JSON integers too; ``int`` rejects booleans.
    default:
        Documented default (informational; factories own real defaults).
    minimum / maximum:
        Inclusive numeric bounds, when the type is numeric.
    choices:
        Allowed values, when the parameter is an enum.
    doc:
        One-line human description.
    """

    name: str
    type: str = "str"
    default: object = None
    minimum: float | None = None
    maximum: float | None = None
    choices: tuple = ()
    doc: str = ""

    def __post_init__(self) -> None:
        if self.type not in _PARAM_TYPES:
            raise ValueError(
                f"FieldSpec type must be one of {tuple(_PARAM_TYPES)}, "
                f"got {self.type!r}"
            )

    def check(self, value: object, path: str) -> None:
        """Raise :class:`RegistryError` unless ``value`` satisfies the spec.

        ``path`` prefixes the message (``workload_params.zipf_alpha``) so
        every surface that funnels here reports the same field path.
        """
        expected = _PARAM_TYPES[self.type]
        ok = isinstance(value, expected) and not (
            isinstance(value, bool) and self.type != "bool"
        )
        if not ok:
            raise RegistryError(
                f"{path}: expected {self.type}, "
                f"got {type(value).__name__} ({value!r})"
            )
        if self.choices and value not in self.choices:
            raise RegistryError(
                f"{path}: must be one of "
                f"{', '.join(repr(c) for c in self.choices)}, got {value!r}"
            )
        if self.minimum is not None and value < self.minimum:  # type: ignore[operator]
            raise RegistryError(
                f"{path}: must be >= {self.minimum}, got {value!r}"
            )
        if self.maximum is not None and value > self.maximum:  # type: ignore[operator]
            raise RegistryError(
                f"{path}: must be <= {self.maximum}, got {value!r}"
            )

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form for ``describe()`` and the plugins CLI."""
        out: dict[str, object] = {"name": self.name, "type": self.type}
        if self.default is not None:
            out["default"] = self.default
        if self.minimum is not None:
            out["minimum"] = self.minimum
        if self.maximum is not None:
            out["maximum"] = self.maximum
        if self.choices:
            out["choices"] = list(self.choices)
        if self.doc:
            out["doc"] = self.doc
        return out


@dataclass(frozen=True)
class PluginSpec:
    """One registered backend.

    Attributes
    ----------
    name:
        Registry key (the value used in configs/CLI flags).
    factory:
        Callable that builds the plugin.  Call signatures are
        family-specific — see each registry's docstring.
    schema:
        ``SimConfig`` field names the factory reads; generic validators
        use this to describe a backend without instantiating it.
    params:
        :class:`FieldSpec` declarations of the plugin's own keyword
        parameters (validated by :meth:`Registry.validate`).  A plugin
        with no declared params rejects any params dict entries.
    description:
        One-line human summary (shown by ``describe()`` and docs).
    """

    name: str
    factory: Callable[..., Any]
    schema: tuple[str, ...] = ()
    params: tuple[FieldSpec, ...] = ()
    description: str = ""

    def param(self, name: str) -> FieldSpec | None:
        for spec in self.params:
            if spec.name == name:
                return spec
        return None


class Registry:
    """Ordered name -> :class:`PluginSpec` table with did-you-mean errors."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._specs: dict[str, PluginSpec] = {}

    def register(
        self,
        name: str,
        factory: Callable[..., Any],
        *,
        schema: tuple[str, ...] = (),
        params: Sequence[FieldSpec] = (),
        description: str = "",
    ) -> PluginSpec:
        """Register ``factory`` under ``name``; re-registering replaces."""
        spec = PluginSpec(
            name=name,
            factory=factory,
            schema=tuple(schema),
            params=tuple(params),
            description=description,
        )
        self._specs[name] = spec
        return spec

    def unregister(self, name: str) -> None:
        """Remove a registration (test plugins, hot plugin reloads)."""
        self._specs.pop(name, None)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._specs)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[PluginSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def get(self, name: str) -> PluginSpec:
        """The spec for ``name``; :class:`RegistryError` with a suggestion."""
        spec = self._specs.get(name)
        if spec is not None:
            return spec
        matches = difflib.get_close_matches(str(name), self._specs, n=1)
        hint = f" — did you mean {matches[0]!r}?" if matches else ""
        raise RegistryError(
            f"unknown {self.kind} {name!r} (choose from {self.names}){hint}",
            suggestion=matches[0] if matches else "",
        )

    def validate(
        self,
        name: str,
        params: Mapping[str, object] | None = None,
        *,
        path: str = "params",
    ) -> str:
        """Validate a name and (optionally) its parameter values.

        With ``params`` given, every key must be declared by the plugin's
        :class:`FieldSpec` list and every value must satisfy its declared
        type/range/enum; violations raise :class:`RegistryError` whose
        message starts with ``<path>.<field>`` so callers on any surface
        (CLI, ``Session``, ``/v1``) report the identical field path.
        Returns ``name`` unchanged.
        """
        spec = self.get(name)
        if not params:
            return name
        declared = {f.name: f for f in spec.params}
        for key, value in params.items():
            field = declared.get(key)
            if field is None:
                if not declared:
                    raise RegistryError(
                        f"{path}.{key}: {self.kind} {name!r} accepts no "
                        "parameters"
                    )
                close = difflib.get_close_matches(str(key), declared, n=1)
                hint = f" (did you mean {close[0]!r}?)" if close else ""
                raise RegistryError(
                    f"{path}.{key}: unknown parameter for {self.kind} "
                    f"{name!r}{hint}; declared: {', '.join(declared)}",
                    suggestion=close[0] if close else "",
                )
            field.check(value, f"{path}.{key}")
        return name

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Look up ``name`` and call its factory."""
        return self.get(name).factory(*args, **kwargs)

    def describe(self) -> dict[str, dict[str, object]]:
        """JSON-friendly summary: name -> {schema, params, description}."""
        return {
            spec.name: {
                "schema": list(spec.schema),
                "params": [f.to_dict() for f in spec.params],
                "description": spec.description,
            }
            for spec in self
        }


def _first_doc_line(obj: object) -> str:
    doc = getattr(obj, "__doc__", None) or ""
    return doc.strip().splitlines()[0].strip() if doc.strip() else ""


#: Write schemes.  ``factory`` is the scheme class; construct through
#: ``cls.from_config(config, pads=...)`` (or ``build_scheme`` which also
#: wires the pad cache).  ``schema`` lists the config fields
#: ``from_config`` reads (``config_fields``) plus the pad-source fields
#: for encrypted schemes.
SCHEMES = Registry("scheme")

#: Wear levelers.  ``factory(config, n_lines, bits_per_line)`` returns a
#: ready leveler; ``schema`` lists the config fields consumed.
WEAR_LEVELERS = Registry("wear_leveling mode")

#: Pad sources.  ``factory(key: bytes)`` returns a
#: :class:`~repro.crypto.pads.PadSource`.
PAD_SOURCES = Registry("pad source kind")

#: Workloads.  ``factory(**params)`` returns the profile object
#: (:class:`~repro.workloads.profiles.WorkloadProfile` or
#: :class:`~repro.workloads.kv.KvProfile`); ``params`` must satisfy the
#: spec's declared :class:`FieldSpec` list.
WORKLOADS = Registry("workload")

#: The registry mapping handed to entry-point plugins and the CLI.
REGISTRIES: dict[str, Registry] = {
    "schemes": SCHEMES,
    "wear_levelers": WEAR_LEVELERS,
    "pad_sources": PAD_SOURCES,
    "workloads": WORKLOADS,
}


def _populate() -> None:
    from repro.crypto.pads import AesPadSource, Blake2PadSource
    from repro.schemes import SCHEME_REGISTRY
    from repro.wear import (
        HorizontalWearLeveler,
        NoWearLeveler,
        SecurityRefresh,
        SecurityRefreshHWL,
        StartGap,
    )
    from repro.workloads.kv import KV_PROFILES, KV_PARAM_SPECS
    from repro.workloads.profiles import PROFILES

    for name, cls in SCHEME_REGISTRY.items():
        schema = tuple(cls.config_fields)
        if cls.requires_pads:
            schema += ("pad_kind", "key", "pad_cache_lines")
        SCHEMES.register(
            name, cls, schema=schema, description=_first_doc_line(cls)
        )

    WEAR_LEVELERS.register(
        "none",
        lambda config, n_lines, bits_per_line: NoWearLeveler(),
        description="no wear leveling (identity mapping)",
    )

    def _hwl(hashed: bool) -> Callable[..., Any]:
        def build(config: Any, n_lines: int, bits_per_line: int) -> Any:
            startgap = StartGap(n_lines, config.gap_write_interval)
            return HorizontalWearLeveler(
                startgap, bits_per_line, hashed=hashed
            )

        return build

    WEAR_LEVELERS.register(
        "hwl",
        _hwl(False),
        schema=("gap_write_interval",),
        description="Start-Gap horizontal wear leveling",
    )
    WEAR_LEVELERS.register(
        "hwl-hashed",
        _hwl(True),
        schema=("gap_write_interval",),
        description="Start-Gap HWL with hashed line remapping",
    )

    def _sr_hwl(config: Any, n_lines: int, bits_per_line: int) -> Any:
        refresh = SecurityRefresh(n_lines, config.gap_write_interval)
        return SecurityRefreshHWL(refresh, bits_per_line)

    WEAR_LEVELERS.register(
        "sr-hwl",
        _sr_hwl,
        schema=("gap_write_interval",),
        description="Security-Refresh horizontal wear leveling",
    )

    PAD_SOURCES.register(
        "aes",
        AesPadSource,
        schema=("key",),
        description="AES counter-mode pad source (the real cipher)",
    )
    PAD_SOURCES.register(
        "blake2",
        Blake2PadSource,
        schema=("key",),
        description="BLAKE2b keyed-hash pad source (fast surrogate)",
    )

    for name, profile in PROFILES.items():
        WORKLOADS.register(
            name,
            (lambda p: lambda: p)(profile),
            schema=("n_writes", "seed", "line_bytes"),
            description=f"Table 2 workload profile {name!r}",
        )

    from dataclasses import replace as _replace

    for name, kv_profile in KV_PROFILES.items():
        WORKLOADS.register(
            name,
            (lambda p: lambda **kw: _replace(p, **kw))(kv_profile),
            schema=("n_writes", "seed", "line_bytes", "workload_params"),
            params=KV_PARAM_SPECS,
            description=(
                f"KV-service profile {name!r}: {kv_profile.summary()}"
            ),
        )


def load_entry_point_plugins(entry_points=None) -> list[str]:
    """Load out-of-tree plugins from the ``deuce_sim.plugins`` group.

    Each entry point must resolve to a callable accepting the registry
    mapping (:data:`REGISTRIES`); the callable registers whatever plugins
    its package provides.  ``entry_points`` may be injected for tests (any
    iterable of objects with ``.name`` and ``.load()``); by default the
    installed-distribution metadata is scanned.  A plugin that fails to
    import or register is skipped — an external package must not be able
    to break ``import repro``.  Returns the entry-point names loaded.
    """
    if entry_points is None:
        import importlib.metadata as metadata

        try:
            entry_points = metadata.entry_points(group=ENTRY_POINT_GROUP)
        except TypeError:  # Python 3.9 dict-shaped API
            entry_points = metadata.entry_points().get(ENTRY_POINT_GROUP, ())
        except Exception:
            return []
    loaded: list[str] = []
    for entry in entry_points:
        try:
            hook = entry.load()
            hook(REGISTRIES)
            loaded.append(entry.name)
        except Exception:
            continue
    return loaded


_populate()
load_entry_point_plugins()


def validate_config_names(
    *,
    scheme: str | None = None,
    workload: str | None = None,
    pad_kind: str | None = None,
    wear_leveling: str | None = None,
    workload_params: Mapping[str, object] | None = None,
) -> None:
    """Validate backend names (and workload params) in one call.

    ``None`` skips a family.  The shared decode path for configs:
    ``SimConfig.from_dict`` (and through it the CLI, ``Session``, the job
    service, and fleet workers checking a dispatched cell spec) funnels
    here, so an unknown name — or an out-of-range workload parameter —
    fails with the same field-path error everywhere.
    """
    if scheme is not None:
        SCHEMES.validate(scheme)
    if workload is not None:
        WORKLOADS.validate(
            workload, workload_params, path="workload_params"
        )
    if pad_kind is not None:
        PAD_SOURCES.validate(pad_kind)
    if wear_leveling is not None:
        WEAR_LEVELERS.validate(wear_leveling)
