"""Uniform named-plugin registries for every configurable backend.

Schemes, wear levelers, pad sources, and workloads are all selected by
name in :class:`~repro.sim.config.SimConfig`.  Before this module each
family had its own bespoke lookup (``SCHEME_REGISTRY.get`` in the runner,
an ``if``/``elif`` chain for wear levelers, :func:`make_pad_source`'s
two-way branch, ``PROFILES[...]`` for workloads) with four different
error-message shapes.  They now share one mechanism:

* :class:`Registry` — an ordered name -> :class:`PluginSpec` table with
  did-you-mean errors (:class:`RegistryError` carries the suggestion).
* :data:`SCHEMES`, :data:`WEAR_LEVELERS`, :data:`PAD_SOURCES`,
  :data:`WORKLOADS` — the four populated registries.

Each :class:`PluginSpec` records the plugin's factory plus a ``schema``:
the tuple of :class:`~repro.sim.config.SimConfig` field names the factory
reads.  That lets generic code — ``deuce-sim serve`` workers validating a
fleet cell spec, docs generators, the CLI — introspect what a named
backend consumes without bespoke per-type code.

Downstream lookups (``build_scheme``, ``_build_leveler``,
``make_pad_source``, ``get_profile``, ``SimConfig.from_dict`` name
validation) all resolve through these registries, so registering a new
plugin here is the single step needed to make it constructible from a
config dict, a CLI flag, or a service payload.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = [
    "PAD_SOURCES",
    "SCHEMES",
    "WEAR_LEVELERS",
    "WORKLOADS",
    "PluginSpec",
    "Registry",
    "RegistryError",
    "validate_config_names",
]


class RegistryError(ValueError):
    """Unknown plugin name; ``suggestion`` holds the closest match (or "")."""

    def __init__(self, message: str, *, suggestion: str = "") -> None:
        super().__init__(message)
        self.suggestion = suggestion


@dataclass(frozen=True)
class PluginSpec:
    """One registered backend.

    Attributes
    ----------
    name:
        Registry key (the value used in configs/CLI flags).
    factory:
        Callable that builds the plugin.  Call signatures are
        family-specific — see each registry's docstring.
    schema:
        ``SimConfig`` field names the factory reads; generic validators
        use this to describe a backend without instantiating it.
    description:
        One-line human summary (shown by ``describe()`` and docs).
    """

    name: str
    factory: Callable[..., Any]
    schema: tuple[str, ...] = ()
    description: str = ""


class Registry:
    """Ordered name -> :class:`PluginSpec` table with did-you-mean errors."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._specs: dict[str, PluginSpec] = {}

    def register(
        self,
        name: str,
        factory: Callable[..., Any],
        *,
        schema: tuple[str, ...] = (),
        description: str = "",
    ) -> PluginSpec:
        """Register ``factory`` under ``name``; re-registering replaces."""
        spec = PluginSpec(
            name=name,
            factory=factory,
            schema=tuple(schema),
            description=description,
        )
        self._specs[name] = spec
        return spec

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._specs)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[PluginSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def get(self, name: str) -> PluginSpec:
        """The spec for ``name``; :class:`RegistryError` with a suggestion."""
        spec = self._specs.get(name)
        if spec is not None:
            return spec
        matches = difflib.get_close_matches(str(name), self._specs, n=1)
        hint = f" — did you mean {matches[0]!r}?" if matches else ""
        raise RegistryError(
            f"unknown {self.kind} {name!r} (choose from {self.names}){hint}",
            suggestion=matches[0] if matches else "",
        )

    def validate(self, name: str) -> str:
        """``name`` unchanged if registered, else :class:`RegistryError`."""
        self.get(name)
        return name

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Look up ``name`` and call its factory."""
        return self.get(name).factory(*args, **kwargs)

    def describe(self) -> dict[str, dict[str, object]]:
        """JSON-friendly summary: name -> {schema, description}."""
        return {
            spec.name: {
                "schema": list(spec.schema),
                "description": spec.description,
            }
            for spec in self
        }


def _first_doc_line(obj: object) -> str:
    doc = getattr(obj, "__doc__", None) or ""
    return doc.strip().splitlines()[0].strip() if doc.strip() else ""


#: Write schemes.  ``factory`` is the scheme class; construct through
#: ``cls.from_config(config, pads=...)`` (or ``build_scheme`` which also
#: wires the pad cache).  ``schema`` lists the config fields
#: ``from_config`` reads (``config_fields``) plus the pad-source fields
#: for encrypted schemes.
SCHEMES = Registry("scheme")

#: Wear levelers.  ``factory(config, n_lines, bits_per_line)`` returns a
#: ready leveler; ``schema`` lists the config fields consumed.
WEAR_LEVELERS = Registry("wear_leveling mode")

#: Pad sources.  ``factory(key: bytes)`` returns a
#: :class:`~repro.crypto.pads.PadSource`.
PAD_SOURCES = Registry("pad source kind")

#: Workloads.  ``factory()`` returns the
#: :class:`~repro.workloads.profiles.WorkloadProfile`.
WORKLOADS = Registry("workload")


def _populate() -> None:
    from repro.crypto.pads import AesPadSource, Blake2PadSource
    from repro.schemes import SCHEME_REGISTRY
    from repro.wear import (
        HorizontalWearLeveler,
        NoWearLeveler,
        SecurityRefresh,
        SecurityRefreshHWL,
        StartGap,
    )
    from repro.workloads.profiles import PROFILES

    for name, cls in SCHEME_REGISTRY.items():
        schema = tuple(cls.config_fields)
        if cls.requires_pads:
            schema += ("pad_kind", "key", "pad_cache_lines")
        SCHEMES.register(
            name, cls, schema=schema, description=_first_doc_line(cls)
        )

    WEAR_LEVELERS.register(
        "none",
        lambda config, n_lines, bits_per_line: NoWearLeveler(),
        description="no wear leveling (identity mapping)",
    )

    def _hwl(hashed: bool) -> Callable[..., Any]:
        def build(config: Any, n_lines: int, bits_per_line: int) -> Any:
            startgap = StartGap(n_lines, config.gap_write_interval)
            return HorizontalWearLeveler(
                startgap, bits_per_line, hashed=hashed
            )

        return build

    WEAR_LEVELERS.register(
        "hwl",
        _hwl(False),
        schema=("gap_write_interval",),
        description="Start-Gap horizontal wear leveling",
    )
    WEAR_LEVELERS.register(
        "hwl-hashed",
        _hwl(True),
        schema=("gap_write_interval",),
        description="Start-Gap HWL with hashed line remapping",
    )

    def _sr_hwl(config: Any, n_lines: int, bits_per_line: int) -> Any:
        refresh = SecurityRefresh(n_lines, config.gap_write_interval)
        return SecurityRefreshHWL(refresh, bits_per_line)

    WEAR_LEVELERS.register(
        "sr-hwl",
        _sr_hwl,
        schema=("gap_write_interval",),
        description="Security-Refresh horizontal wear leveling",
    )

    PAD_SOURCES.register(
        "aes",
        AesPadSource,
        schema=("key",),
        description="AES counter-mode pad source (the real cipher)",
    )
    PAD_SOURCES.register(
        "blake2",
        Blake2PadSource,
        schema=("key",),
        description="BLAKE2b keyed-hash pad source (fast surrogate)",
    )

    for name, profile in PROFILES.items():
        WORKLOADS.register(
            name,
            (lambda p: lambda: p)(profile),
            schema=("n_writes", "seed", "line_bytes"),
            description=f"Table 2 workload profile {name!r}",
        )


_populate()


def validate_config_names(
    *,
    scheme: str | None = None,
    workload: str | None = None,
    pad_kind: str | None = None,
    wear_leveling: str | None = None,
) -> None:
    """Validate backend names in one call; ``None`` skips a family.

    The shared decode path for configs: ``SimConfig.from_dict`` (and
    through it the CLI, ``Session``, the job service, and fleet workers
    checking a dispatched cell spec) funnels here, so an unknown name
    fails with the same did-you-mean error everywhere.
    """
    if scheme is not None:
        SCHEMES.validate(scheme)
    if workload is not None:
        WORKLOADS.validate(workload)
    if pad_kind is not None:
        PAD_SOURCES.validate(pad_kind)
    if wear_leveling is not None:
        WEAR_LEVELERS.validate(wear_leveling)
