"""DynDEUCE — dynamically morphing between DEUCE and FNW (section 4.6).

Dense writers (the paper calls out Gems and soplex) modify most words of a
line on every write, making DEUCE re-encrypt everything — 50% flips — where
plain Flip-N-Write on the ciphertext would at least cap flips near 43%.
DynDEUCE gets the better of both with only **one extra mode bit per line**:
the 32 tracking bits are *modified bits* while the line operates as DEUCE and
are repurposed as FNW *flip bits* once the line morphs.

Rules (Figure 11):

* At every epoch start the mode returns to DEUCE (full re-encryption,
  tracking bits reset) — morphing FNW→DEUCE mid-epoch is impossible because
  the epoch's modified-word history is gone.
* On each mid-epoch write while in DEUCE mode, the controller computes the
  exact bit flips of both candidates — continue as DEUCE, or re-encrypt the
  whole line and FNW-encode it — and switches to FNW iff it is strictly
  cheaper (counting the mode-bit flip itself).
* Once in FNW mode, the line stays FNW until the next epoch.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.ctr import mix_pads_array
from repro.crypto.pads import PadSource
from repro.memory import bitops
from repro.memory.line import StoredLine
from repro.schemes.base import WriteOutcome, WriteScheme
from repro.schemes.deuce import _check_epoch_interval
from repro.schemes.fnw import FnwCodec

MODE_DEUCE = 0
MODE_FNW = 1


class DynDeuce(WriteScheme):
    """DEUCE that morphs to Flip-N-Write when FNW would flip fewer bits.

    Metadata layout: ``meta[0:n_words]`` are the tracking bits (modified
    bits in DEUCE mode, flip bits in FNW mode); ``meta[n_words]`` is the
    mode bit.
    """

    name = "dyndeuce"

    config_fields = {
        "line_bytes": "line_bytes",
        "word_bytes": "word_bytes",
        "epoch_interval": "epoch_interval",
    }

    def __init__(
        self,
        pads: PadSource,
        line_bytes: int = 64,
        word_bytes: int = 2,
        epoch_interval: int = 32,
    ) -> None:
        super().__init__(line_bytes)
        if word_bytes <= 0 or line_bytes % word_bytes != 0:
            raise ValueError(
                f"word_bytes={word_bytes} must divide line_bytes={line_bytes}"
            )
        self.pads = pads
        self.word_bytes = word_bytes
        self.n_words = line_bytes // word_bytes
        self.epoch_interval = _check_epoch_interval(epoch_interval)
        self._epoch_mask = ~(epoch_interval - 1)
        # FNW reuses the same granularity so the tracking bits map 1:1.
        self.codec = FnwCodec(line_bytes, word_bytes * 8)

    @property
    def metadata_bits_per_line(self) -> int:
        return self.n_words + 1  # tracking bits + ModeBit (Table 3: 33)

    # -- metadata accessors --------------------------------------------------

    @staticmethod
    def _tracking(meta: np.ndarray) -> np.ndarray:
        return meta[:-1]

    @staticmethod
    def _mode(meta: np.ndarray) -> int:
        return int(meta[-1])

    def _make_meta(self, tracking: np.ndarray, mode: int) -> np.ndarray:
        meta = np.empty(self.n_words + 1, dtype=np.uint8)
        meta[:-1] = tracking
        meta[-1] = mode
        return meta

    # -- pads ------------------------------------------------------------------

    def _pad(self, address: int, counter: int) -> np.ndarray:
        return self.pads.line_pad_array(address, counter, self.line_bytes)

    def _deuce_pad(
        self, address: int, counter: int, tracking: np.ndarray
    ) -> np.ndarray:
        tctr = counter & self._epoch_mask
        if counter == tctr or not tracking.any():
            return self._pad(address, counter if counter == tctr else tctr)
        return mix_pads_array(
            self._pad(address, counter),
            self._pad(address, tctr),
            tracking,
            self.word_bytes,
        )

    # -- lifecycle ---------------------------------------------------------------

    def _install(self, address: int, plaintext: bytes) -> StoredLine:
        stored = bitops.as_array(plaintext) ^ self._pad(address, 0)
        meta = self._make_meta(
            np.zeros(self.n_words, dtype=np.uint8), MODE_DEUCE
        )
        return StoredLine(stored, meta, 0)

    def _read_array(self, address: int) -> np.ndarray:
        line = self._lines[address]
        tracking = self._tracking(line.meta)
        if self._mode(line.meta) == MODE_FNW:
            ciphertext = self.codec.decode_array(line.arr, tracking)
            return ciphertext ^ self._pad(address, line.counter)
        return line.arr ^ self._deuce_pad(address, line.counter, tracking)

    def read(self, address: int) -> bytes:
        return bitops.to_bytes(self._read_array(address))

    # -- write path -----------------------------------------------------------------

    def _write(self, address: int, plaintext: bytes) -> WriteOutcome:
        old = self._lines[address]
        old_plain = self._read_array(address)
        counter = old.counter + 1

        if counter % self.epoch_interval == 0:
            new = self._epoch_write(address, plaintext, counter)
            outcome = self._outcome(
                address,
                old,
                new,
                words_reencrypted=self.n_words,
                full_line_reencrypted=True,
                epoch_reset=True,
                mode_switched=self._mode(old.meta) == MODE_FNW,
                mode="deuce",
            )
        elif self._mode(old.meta) == MODE_FNW:
            new = self._fnw_write(address, old, plaintext, counter)
            outcome = self._outcome(
                address,
                old,
                new,
                words_reencrypted=self.n_words,
                full_line_reencrypted=True,
                mode="fnw",
            )
        else:
            new, label, n_reenc = self._choose_write(
                address, old, old_plain, plaintext, counter
            )
            outcome = self._outcome(
                address,
                old,
                new,
                words_reencrypted=n_reenc,
                full_line_reencrypted=(label == "fnw"),
                mode_switched=(label == "fnw"),
                mode=label,
            )
        self._lines[address] = new
        return outcome

    def _epoch_write(
        self, address: int, plaintext: bytes, counter: int
    ) -> StoredLine:
        stored = bitops.as_array(plaintext) ^ self._pad(address, counter)
        meta = self._make_meta(
            np.zeros(self.n_words, dtype=np.uint8), MODE_DEUCE
        )
        return StoredLine(stored, meta, counter)

    def _fnw_write(
        self, address: int, old: StoredLine, plaintext: bytes, counter: int
    ) -> StoredLine:
        ciphertext = bitops.as_array(plaintext) ^ self._pad(address, counter)
        stored, flip_bits = self.codec.encode_array(
            old.arr, self._tracking(old.meta), ciphertext
        )
        return StoredLine(stored, self._make_meta(flip_bits, MODE_FNW), counter)

    def _deuce_candidate(
        self,
        address: int,
        old: StoredLine,
        old_plain: np.ndarray,
        plaintext: bytes,
        counter: int,
    ) -> StoredLine:
        newly = bitops.changed_words_array(
            old_plain, bitops.as_array(plaintext), self.word_bytes
        )
        tracking = self._tracking(old.meta).copy()
        tracking[newly] = 1
        pad = self._deuce_pad(address, counter, tracking)
        stored = bitops.as_array(plaintext) ^ pad
        return StoredLine(stored, self._make_meta(tracking, MODE_DEUCE), counter)

    def _choose_write(
        self,
        address: int,
        old: StoredLine,
        old_plain: np.ndarray,
        plaintext: bytes,
        counter: int,
    ) -> tuple[StoredLine, str, int]:
        """Figure 11: evaluate both modes, pick the cheaper (ties: DEUCE)."""
        deuce_line = self._deuce_candidate(
            address, old, old_plain, plaintext, counter
        )
        fnw_line = self._fnw_write(address, old, plaintext, counter)
        cost_deuce = self._cost(old, deuce_line)
        cost_fnw = self._cost(old, fnw_line)
        if cost_fnw < cost_deuce:
            return fnw_line, "fnw", self.n_words
        n_reenc = int(self._tracking(deuce_line.meta).sum())
        return deuce_line, "deuce", n_reenc

    @staticmethod
    def _cost(old: StoredLine, new: StoredLine) -> int:
        return bitops.bit_flips_array(old.arr, new.arr) + int(
            np.count_nonzero(old.meta != new.meta)
        )
