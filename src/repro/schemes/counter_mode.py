"""Full-line counter-mode encryption — the paper's "Encr" baseline.

Every writeback increments the per-line counter and re-encrypts the whole
line with the fresh pad (Figure 4).  The avalanche effect then makes ~50% of
the stored bits differ from the previous ciphertext regardless of how little
the plaintext changed — exactly the write overhead DEUCE attacks.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.pads import PadSource
from repro.memory import bitops
from repro.memory.line import StoredLine, make_meta
from repro.schemes.base import WriteOutcome, WriteScheme
from repro.schemes.batch import (
    BatchOutcome,
    diff_stored_rows,
    empty_batch,
    group_by_address,
    previous_rows,
)


class EncryptedDCW(WriteScheme):
    """Counter-mode encryption with data-comparison writes ("Encr DCW").

    DCW still applies at the cell level (unchanged ciphertext bits are not
    reprogrammed), but since a fresh pad randomizes the ciphertext, about
    half the bits flip on every write.
    """

    name = "encr-dcw"

    supports_write_batch = True

    def __init__(self, pads: PadSource, line_bytes: int = 64) -> None:
        super().__init__(line_bytes)
        self.pads = pads

    @property
    def metadata_bits_per_line(self) -> int:
        return 0

    def _pad(self, address: int, counter: int) -> np.ndarray:
        return self.pads.line_pad_array(address, counter, self.line_bytes)

    def _install(self, address: int, plaintext: bytes) -> StoredLine:
        stored = bitops.as_array(plaintext) ^ self._pad(address, 0)
        return StoredLine(stored, make_meta(0), 0)

    def install_batch(self, addresses, data) -> None:
        """Vectorized initial encryption: one pad batch for the working set."""
        addresses = np.asarray(addresses, dtype=np.int64)
        plain = np.asarray(data, dtype=np.uint8)
        if plain.ndim != 2 or plain.shape[1] != self.line_bytes:
            raise ValueError(
                f"lines must be (n, {self.line_bytes}), got {plain.shape}"
            )
        n = addresses.size
        pads = np.asarray(
            self.pads.line_pads_batch(
                addresses, np.zeros(n, dtype=np.int64), self.line_bytes
            )
        )
        stored = plain ^ pads
        stored.setflags(write=False)
        metas = np.zeros((n, 0), dtype=np.uint8)
        metas.setflags(write=False)
        from_parts = StoredLine.from_parts
        lines = self._lines
        for addr, s_row, m_row in zip(addresses.tolist(), stored, metas):
            lines[addr] = from_parts(s_row, m_row, 0)

    def _write(self, address: int, plaintext: bytes) -> WriteOutcome:
        old = self._lines[address]
        counter = old.counter + 1
        new = StoredLine(
            bitops.as_array(plaintext) ^ self._pad(address, counter),
            make_meta(0),
            counter,
        )
        self._lines[address] = new
        return self._outcome(
            address, old, new, full_line_reencrypted=True
        )

    def read(self, address: int) -> bytes:
        line = self._lines[address]
        return bitops.to_bytes(line.arr ^ self._pad(address, line.counter))

    def write_batch(self, addresses, data) -> BatchOutcome:
        """Vectorized full-line re-encryption over a chunk.

        Every write takes a fresh counter, so the whole chunk's keystream
        is one wide pad call; stored images are a single XOR and flips a
        consecutive-row diff.  Bit-identical to sequential writes.
        """
        m = len(addresses)
        if m == 0:
            return empty_batch()
        groups = group_by_address(addresses, data)
        starts = groups.starts
        lines_get = self._lines.get
        ctr_list: list[int] = []
        stored_rows: list[np.ndarray] = []
        for addr in groups.unique_addresses.tolist():
            line = lines_get(addr)
            if line is None:
                raise KeyError(
                    f"line {addr:#x} was never installed; call install() first"
                )
            ctr_list.append(line.counter)
            stored_rows.append(line.arr)
        base_counters = np.asarray(ctr_list, dtype=np.int64)
        old_stored = np.concatenate(stored_rows).reshape(
            starts.size, self.line_bytes
        )
        counters = base_counters[groups.group_id] + groups.rank + 1
        counters_orig = np.empty(m, dtype=np.int64)
        counters_orig[groups.order] = counters
        pads = self.pads.line_pads_batch(
            np.asarray(addresses, dtype=np.int64),
            counters_orig,
            self.line_bytes,
        )
        stored = groups.data ^ np.asarray(pads)[groups.order]
        prev_stored = previous_rows(stored, starts, old_stored)
        diffs = diff_stored_rows(prev_stored, stored, None, None)
        # Bulk commit: one fancy-index copies every final row; lines hold
        # views into the small per-group buffer, not the chunk arrays.
        last_rows = groups.last_rows
        final_stored = stored[last_rows]
        final_stored.setflags(write=False)
        final_counters = counters[last_rows].tolist()
        metas = np.zeros((last_rows.size, 0), dtype=np.uint8)
        metas.setflags(write=False)
        from_parts = StoredLine.from_parts
        lines = self._lines
        for addr, s_row, m_row, ctr in zip(
            groups.unique_addresses.tolist(), final_stored, metas, final_counters
        ):
            lines[addr] = from_parts(s_row, m_row, ctr)
        return BatchOutcome(
            addresses=groups.addresses,
            words_reencrypted=np.zeros(m, dtype=np.int64),
            full_line_reencrypted=np.ones(m, dtype=bool),
            epoch_reset=np.zeros(m, dtype=bool),
            mode_switched=np.zeros(m, dtype=bool),
            **diffs,
        )
