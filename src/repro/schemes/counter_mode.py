"""Full-line counter-mode encryption — the paper's "Encr" baseline.

Every writeback increments the per-line counter and re-encrypts the whole
line with the fresh pad (Figure 4).  The avalanche effect then makes ~50% of
the stored bits differ from the previous ciphertext regardless of how little
the plaintext changed — exactly the write overhead DEUCE attacks.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.pads import PadSource
from repro.memory import bitops
from repro.memory.line import StoredLine, make_meta
from repro.schemes.base import WriteOutcome, WriteScheme


class EncryptedDCW(WriteScheme):
    """Counter-mode encryption with data-comparison writes ("Encr DCW").

    DCW still applies at the cell level (unchanged ciphertext bits are not
    reprogrammed), but since a fresh pad randomizes the ciphertext, about
    half the bits flip on every write.
    """

    name = "encr-dcw"

    def __init__(self, pads: PadSource, line_bytes: int = 64) -> None:
        super().__init__(line_bytes)
        self.pads = pads

    @property
    def metadata_bits_per_line(self) -> int:
        return 0

    def _pad(self, address: int, counter: int) -> np.ndarray:
        return self.pads.line_pad_array(address, counter, self.line_bytes)

    def _install(self, address: int, plaintext: bytes) -> StoredLine:
        stored = bitops.as_array(plaintext) ^ self._pad(address, 0)
        return StoredLine(stored, make_meta(0), 0)

    def _write(self, address: int, plaintext: bytes) -> WriteOutcome:
        old = self._lines[address]
        counter = old.counter + 1
        new = StoredLine(
            bitops.as_array(plaintext) ^ self._pad(address, counter),
            make_meta(0),
            counter,
        )
        self._lines[address] = new
        return self._outcome(
            address, old, new, full_line_reencrypted=True
        )

    def read(self, address: int) -> bytes:
        line = self._lines[address]
        return bitops.to_bytes(line.arr ^ self._pad(address, line.counter))
