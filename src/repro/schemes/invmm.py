"""i-NVMM: incremental partial-memory encryption [Chhabra & Solihin, ISCA'11].

The related-work comparison of section 7.2.  i-NVMM keeps the *hot* working
set in plaintext and encrypts pages incrementally as they go cold, plus a
bulk encryption pass on power-down.  Writes to hot lines therefore cost only
their true bit flips (no avalanche) — but the scheme trades security for it:

* a writeback of a hot line crosses the memory bus in plaintext, so it does
  **not** protect against bus snooping (the paper's key criticism);
* a stolen DIMM yanked while powered exposes the hot working set.

Both weaknesses are observable through this implementation's
:meth:`INvmm.snapshot` / outcome plaintext accounting, which the security
tests and attack demos exercise.

Cold-line encryption uses ordinary counter-mode with the per-line counter,
advanced incrementally by a background sweep emulated at write granularity.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.pads import PadSource
from repro.memory import bitops
from repro.memory.line import StoredLine, make_meta
from repro.schemes.base import WriteOutcome, WriteScheme

#: meta[0] == 1 when the stored image is encrypted.
_ENCRYPTED_BIT = 0


class INvmm(WriteScheme):
    """Partial working-set encryption with incremental cold sweeps.

    Parameters
    ----------
    pads:
        Counter-mode pad source (used for cold lines and power-down).
    idle_threshold:
        Writebacks (to anything) after which an untouched line is deemed
        cold and becomes eligible for the encryption sweep.
    sweep_lines_per_write:
        Background encryption bandwidth: cold lines encrypted per
        writeback.
    """

    name = "invmm"

    def __init__(
        self,
        pads: PadSource,
        line_bytes: int = 64,
        idle_threshold: int = 256,
        sweep_lines_per_write: int = 1,
    ) -> None:
        super().__init__(line_bytes)
        if idle_threshold < 1:
            raise ValueError("idle_threshold must be >= 1")
        if sweep_lines_per_write < 0:
            raise ValueError("sweep_lines_per_write must be >= 0")
        self.pads = pads
        self.idle_threshold = idle_threshold
        self.sweep_lines_per_write = sweep_lines_per_write
        self._tick = 0
        self._last_write: dict[int, int] = {}
        self._sweep_order: list[int] = []
        self._sweep_pos = 0
        #: Flips spent by background encryption sweeps (reported separately;
        #: they are memory-internal writes, not writebacks).
        self.sweep_flips = 0
        self.sweep_encryptions = 0

    @property
    def metadata_bits_per_line(self) -> int:
        return 1  # the encrypted flag

    # -- helpers ------------------------------------------------------------

    def _pad(self, address: int, counter: int) -> bytes:
        return self.pads.line_pad(address, counter, self.line_bytes)

    def is_encrypted(self, address: int) -> bool:
        return bool(self._lines[address].meta[_ENCRYPTED_BIT])

    def _encrypt_line(self, address: int) -> int:
        """Encrypt a plaintext-resident line in place; returns flips."""
        line = self._lines[address]
        counter = line.counter + 1
        stored = bitops.xor(line.data, self._pad(address, counter))
        meta = make_meta(1)
        meta[_ENCRYPTED_BIT] = 1
        new = StoredLine(stored, meta, counter)
        flips = bitops.bit_flips(line.data, stored) + 1  # + the flag bit
        self._lines[address] = new
        return flips

    def _sweep(self) -> None:
        """Advance the background sweep, encrypting cold plaintext lines."""
        if not self._sweep_order:
            self._sweep_order = sorted(self._lines)
        for _ in range(min(self.sweep_lines_per_write, len(self._sweep_order))):
            address = self._sweep_order[self._sweep_pos % len(self._sweep_order)]
            self._sweep_pos += 1
            line = self._lines.get(address)
            if line is None or line.meta[_ENCRYPTED_BIT]:
                continue
            idle = self._tick - self._last_write.get(address, 0)
            if idle >= self.idle_threshold:
                self.sweep_flips += self._encrypt_line(address)
                self.sweep_encryptions += 1

    # -- checkpointing -------------------------------------------------------

    def _extra_state(self) -> dict[str, object]:
        last = self._last_write
        return {
            "tick": self._tick,
            "sweep_pos": self._sweep_pos,
            "sweep_flips": self.sweep_flips,
            "sweep_encryptions": self.sweep_encryptions,
            "last_write_addresses": np.fromiter(
                last.keys(), dtype=np.int64, count=len(last)
            ),
            "last_write_ticks": np.fromiter(
                last.values(), dtype=np.int64, count=len(last)
            ),
            "sweep_order": np.asarray(self._sweep_order, dtype=np.int64),
        }

    def _load_extra_state(self, extra: dict[str, object]) -> None:
        self._tick = int(extra["tick"])
        self._sweep_pos = int(extra["sweep_pos"])
        self.sweep_flips = int(extra["sweep_flips"])
        self.sweep_encryptions = int(extra["sweep_encryptions"])
        addresses = np.asarray(extra["last_write_addresses"], dtype=np.int64)
        ticks = np.asarray(extra["last_write_ticks"], dtype=np.int64)
        self._last_write = {
            int(a): int(t) for a, t in zip(addresses, ticks)
        }
        self._sweep_order = [
            int(a) for a in np.asarray(extra["sweep_order"], dtype=np.int64)
        ]

    # -- lifecycle -------------------------------------------------------------

    def _install(self, address: int, plaintext: bytes) -> StoredLine:
        # Pages arrive encrypted (they were cold on disk / first placement).
        meta = make_meta(1)
        meta[_ENCRYPTED_BIT] = 1
        self._last_write[address] = self._tick
        self._sweep_order = []
        return StoredLine(bitops.xor(plaintext, self._pad(address, 0)), meta, 0)

    def read(self, address: int) -> bytes:
        line = self._lines[address]
        if line.meta[_ENCRYPTED_BIT]:
            return bitops.xor(line.data, self._pad(address, line.counter))
        return line.data

    def _write(self, address: int, plaintext: bytes) -> WriteOutcome:
        old = self._lines[address]
        self._tick += 1
        self._last_write[address] = self._tick
        # A written line is hot: it lives (and travels) in plaintext.
        new = StoredLine(plaintext, make_meta(1), old.counter)
        self._lines[address] = new
        outcome = self._outcome(
            address,
            old,
            new,
            full_line_reencrypted=bool(old.meta[_ENCRYPTED_BIT]),
            mode="plaintext",
        )
        self._sweep()
        return outcome

    # -- security surface ----------------------------------------------------------

    def snapshot(self) -> dict[int, bytes]:
        """What a stolen DIMM exposes: every line's stored image."""
        return {addr: line.data for addr, line in self._lines.items()}

    def plaintext_lines(self) -> list[int]:
        """Addresses currently resident in plaintext (the hot set)."""
        return [
            addr
            for addr, line in self._lines.items()
            if not line.meta[_ENCRYPTED_BIT]
        ]

    def power_down(self) -> int:
        """Encrypt the entire hot set (graceful shutdown); returns flips."""
        flips = 0
        for address in self.plaintext_lines():
            flips += self._encrypt_line(address)
        return flips
