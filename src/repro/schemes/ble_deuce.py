"""BLE+DEUCE — dual-counter encryption inside each AES block (Figure 18).

The paper notes DEUCE is orthogonal to Block-Level Encryption and the two
combine for greater benefit (33% and 24% standalone, 19.9% together).  Here
each 16-byte block keeps its own counter (BLE) *and* its own DEUCE epoch:
when a block's content changes, its counter increments; at block-epoch starts
the whole block is re-encrypted and its modified bits reset, and in between
only the words of the block modified this epoch are re-encrypted with the
block's leading counter.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.pads import PAD_BLOCK_BYTES, PadSource
from repro.memory import bitops
from repro.memory.line import StoredLine
from repro.schemes.base import WriteOutcome, WriteScheme
from repro.schemes.deuce import _check_epoch_interval


class BleDeuce(WriteScheme):
    """Per-block counters + per-word dual-counter re-encryption.

    Metadata layout: one modified bit per word across the whole line,
    grouped block-major (words of block 0 first).  With the 2-byte default
    this is the same 32 bits/line as plain DEUCE.
    """

    name = "ble+deuce"

    config_fields = {
        "line_bytes": "line_bytes",
        "word_bytes": "word_bytes",
        "epoch_interval": "epoch_interval",
    }

    def __init__(
        self,
        pads: PadSource,
        line_bytes: int = 64,
        word_bytes: int = 2,
        epoch_interval: int = 32,
    ) -> None:
        super().__init__(line_bytes)
        if line_bytes % PAD_BLOCK_BYTES != 0:
            raise ValueError(
                f"line_bytes={line_bytes} is not a whole number of "
                f"{PAD_BLOCK_BYTES}-byte AES blocks"
            )
        if word_bytes <= 0 or PAD_BLOCK_BYTES % word_bytes != 0:
            raise ValueError(
                f"word_bytes={word_bytes} must divide the "
                f"{PAD_BLOCK_BYTES}-byte AES block"
            )
        self.pads = pads
        self.block_bytes = PAD_BLOCK_BYTES
        self.n_blocks = line_bytes // self.block_bytes
        self.word_bytes = word_bytes
        self.words_per_block = self.block_bytes // word_bytes
        self.n_words = line_bytes // word_bytes
        self.epoch_interval = _check_epoch_interval(epoch_interval)
        self._epoch_mask = ~(epoch_interval - 1)
        self._block_counters: dict[int, list[int]] = {}

    @property
    def metadata_bits_per_line(self) -> int:
        return self.n_words

    def block_counters(self, address: int) -> list[int]:
        return list(self._block_counters[address])

    # -- per-block helpers ----------------------------------------------------

    def _block_pad(self, address: int, counter: int, block: int) -> np.ndarray:
        return np.frombuffer(
            self.pads.pad_block(address, counter, block), dtype=np.uint8
        )

    def _block_slice(self, arr: np.ndarray, block: int) -> np.ndarray:
        lo = block * self.block_bytes
        return arr[lo: lo + self.block_bytes]

    def _block_meta(self, meta: np.ndarray, block: int) -> np.ndarray:
        lo = block * self.words_per_block
        return meta[lo: lo + self.words_per_block]

    def _mixed_block_pad(
        self, address: int, block: int, counter: int, modified: np.ndarray
    ) -> np.ndarray:
        """DEUCE's per-word pad mux, scoped to one AES block."""
        tctr = counter & self._epoch_mask
        if counter == tctr or not modified.any():
            return self._block_pad(
                address, counter if counter == tctr else tctr, block
            )
        lead = self._block_pad(address, counter, block)
        trail = self._block_pad(address, tctr, block)
        byte_mask = np.repeat(modified.astype(bool), self.word_bytes)
        return np.where(byte_mask, lead, trail)

    # -- checkpointing -------------------------------------------------------

    def _extra_state(self) -> dict[str, object]:
        n = len(self._block_counters)
        addresses = np.empty(n, dtype=np.int64)
        counters = np.empty((n, self.n_blocks), dtype=np.int64)
        for i, (addr, blocks) in enumerate(self._block_counters.items()):
            addresses[i] = addr
            counters[i] = blocks
        return {"block_addresses": addresses, "block_counters": counters}

    def _load_extra_state(self, extra: dict[str, object]) -> None:
        addresses = np.asarray(extra["block_addresses"], dtype=np.int64)
        counters = np.asarray(extra["block_counters"], dtype=np.int64)
        self._block_counters = {
            int(addresses[i]): [int(c) for c in counters[i]]
            for i in range(addresses.size)
        }

    # -- lifecycle ---------------------------------------------------------------

    def _install(self, address: int, plaintext: bytes) -> StoredLine:
        self._block_counters[address] = [0] * self.n_blocks
        plain = bitops.as_array(plaintext)
        stored = np.empty(self.line_bytes, dtype=np.uint8)
        for b in range(self.n_blocks):
            self._block_slice(stored, b)[:] = self._block_slice(
                plain, b
            ) ^ self._block_pad(address, 0, b)
        return StoredLine(stored, np.zeros(self.n_words, dtype=np.uint8), 0)

    def _read_array(self, address: int) -> np.ndarray:
        line = self._lines[address]
        counters = self._block_counters[address]
        plain = np.empty(self.line_bytes, dtype=np.uint8)
        for b in range(self.n_blocks):
            pad = self._mixed_block_pad(
                address, b, counters[b], self._block_meta(line.meta, b)
            )
            self._block_slice(plain, b)[:] = self._block_slice(line.arr, b) ^ pad
        return plain

    def read(self, address: int) -> bytes:
        return bitops.to_bytes(self._read_array(address))

    def _write(self, address: int, plaintext: bytes) -> WriteOutcome:
        old = self._lines[address]
        old_plain = self._read_array(address)
        new_plain = bitops.as_array(plaintext)
        counters = self._block_counters[address]

        changed_blocks = np.nonzero(
            (old_plain != new_plain)
            .reshape(self.n_blocks, self.block_bytes)
            .any(axis=1)
        )[0]
        stored = old.arr.copy()
        meta = old.meta.copy()
        words_reenc = 0
        blocks_full = 0
        for b in changed_blocks:
            new_block = self._block_slice(new_plain, b)
            counters[b] += 1
            counter = counters[b]
            block_meta = self._block_meta(meta, b)
            if counter % self.epoch_interval == 0:
                block_meta[:] = 0
                pad = self._block_pad(address, counter, b)
                blocks_full += 1
                words_reenc += self.words_per_block
            else:
                newly = bitops.changed_words_array(
                    self._block_slice(old_plain, b), new_block, self.word_bytes
                )
                block_meta[newly] = 1
                pad = self._mixed_block_pad(address, b, counter, block_meta)
                words_reenc += int(block_meta.sum())
            self._block_slice(stored, b)[:] = new_block ^ pad

        new = StoredLine(stored, meta, old.counter + 1)
        self._lines[address] = new
        # A line-wide epoch reset only happens when every block crossed its
        # epoch boundary on this same write.
        return self._outcome(
            address,
            old,
            new,
            words_reencrypted=words_reenc,
            full_line_reencrypted=(blocks_full == self.n_blocks),
            epoch_reset=(blocks_full == self.n_blocks),
            mode="ble+deuce",
        )
