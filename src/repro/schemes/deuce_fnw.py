"""DEUCE+FNW — dedicated storage for both techniques (section 4.7, Table 3).

The paper's upper-bound configuration: the line carries DEUCE's 32 modified
bits *and* FNW's 32 flip bits (64 bits total).  DEUCE decides which words get
re-encrypted; FNW then stores each re-encrypted group plain or inverted,
whichever is closer to the cells' current contents.  Words DEUCE leaves
untouched are never inverted (inverting them could only add flips), so they
contribute zero flips just as in plain DEUCE.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.ctr import mix_pads_array
from repro.crypto.pads import PadSource
from repro.memory import bitops
from repro.memory.line import StoredLine
from repro.schemes.base import WriteOutcome, WriteScheme
from repro.schemes.deuce import _check_epoch_interval
from repro.schemes.fnw import FnwCodec


class DeuceFnw(WriteScheme):
    """DEUCE layered with Flip-N-Write, each with dedicated metadata.

    Metadata layout: ``meta[0:n_words]`` are DEUCE modified bits,
    ``meta[n_words:]`` are FNW flip bits (one per FNW group).
    """

    name = "deuce+fnw"

    config_fields = {
        "line_bytes": "line_bytes",
        "word_bytes": "word_bytes",
        "epoch_interval": "epoch_interval",
        "fnw_group_bits": "fnw_group_bits",
    }

    def __init__(
        self,
        pads: PadSource,
        line_bytes: int = 64,
        word_bytes: int = 2,
        epoch_interval: int = 32,
        fnw_group_bits: int = 16,
    ) -> None:
        super().__init__(line_bytes)
        if word_bytes <= 0 or line_bytes % word_bytes != 0:
            raise ValueError(
                f"word_bytes={word_bytes} must divide line_bytes={line_bytes}"
            )
        self.pads = pads
        self.word_bytes = word_bytes
        self.n_words = line_bytes // word_bytes
        self.epoch_interval = _check_epoch_interval(epoch_interval)
        self._epoch_mask = ~(epoch_interval - 1)
        self.codec = FnwCodec(line_bytes, fnw_group_bits)

    @property
    def metadata_bits_per_line(self) -> int:
        return self.n_words + self.codec.n_groups  # 64 for the defaults

    # -- metadata accessors ---------------------------------------------------

    def _modified(self, meta: np.ndarray) -> np.ndarray:
        return meta[: self.n_words]

    def _flip_bits(self, meta: np.ndarray) -> np.ndarray:
        return meta[self.n_words:]

    def _make_meta(
        self, modified: np.ndarray, flip_bits: np.ndarray
    ) -> np.ndarray:
        return np.concatenate([modified, flip_bits]).astype(np.uint8)

    # -- pads -------------------------------------------------------------------

    def _pad(self, address: int, counter: int) -> np.ndarray:
        return self.pads.line_pad_array(address, counter, self.line_bytes)

    def _mixed_pad(
        self, address: int, counter: int, modified: np.ndarray
    ) -> np.ndarray:
        tctr = counter & self._epoch_mask
        if counter == tctr or not modified.any():
            return self._pad(address, counter if counter == tctr else tctr)
        return mix_pads_array(
            self._pad(address, counter),
            self._pad(address, tctr),
            modified,
            self.word_bytes,
        )

    # -- lifecycle ----------------------------------------------------------------

    def _install(self, address: int, plaintext: bytes) -> StoredLine:
        stored = bitops.as_array(plaintext) ^ self._pad(address, 0)
        meta = self._make_meta(
            np.zeros(self.n_words, dtype=np.uint8),
            self.codec.fresh_flip_bits(),
        )
        return StoredLine(stored, meta, 0)

    def _read_array(self, address: int) -> np.ndarray:
        line = self._lines[address]
        ciphertext = self.codec.decode_array(
            line.arr, self._flip_bits(line.meta)
        )
        pad = self._mixed_pad(address, line.counter, self._modified(line.meta))
        return ciphertext ^ pad

    def read(self, address: int) -> bytes:
        return bitops.to_bytes(self._read_array(address))

    # -- write path ------------------------------------------------------------------

    def _write(self, address: int, plaintext: bytes) -> WriteOutcome:
        old = self._lines[address]
        old_plain = self._read_array(address)
        new_plain = bitops.as_array(plaintext)
        counter = old.counter + 1

        if counter % self.epoch_interval == 0:
            modified = np.zeros(self.n_words, dtype=np.uint8)
            full = True
        else:
            newly = bitops.changed_words_array(
                old_plain, new_plain, self.word_bytes
            )
            modified = self._modified(old.meta).copy()
            modified[newly] = 1
            full = False

        ciphertext = new_plain ^ self._mixed_pad(address, counter, modified)
        stored, flip_bits = self.codec.encode_array(
            old.arr, self._flip_bits(old.meta), ciphertext
        )
        new = StoredLine(stored, self._make_meta(modified, flip_bits), counter)
        self._lines[address] = new
        n_reenc = self.n_words if full else int(modified.sum())
        return self._outcome(
            address,
            old,
            new,
            words_reencrypted=n_reenc,
            full_line_reencrypted=full,
            epoch_reset=full,
            mode="deuce+fnw",
        )
