"""Write-scheme interface.

Every technique the paper evaluates — DCW, FNW, full-line counter-mode
encryption, DEUCE, DynDEUCE, DEUCE+FNW, BLE, BLE+DEUCE — is a *write scheme*:
a policy that, given the plaintext a core writes back, decides what bit
pattern lands in the PCM cells and how per-line metadata changes.  All of
them implement :class:`WriteScheme`, which makes the simulator, the wear
model, and the benchmarks scheme-agnostic.

Schemes are *functional*, not just counting models: ``read`` must return the
exact plaintext most recently written, with decryption actually performed via
the pad source.  Tests rely on this to prove, e.g., that DEUCE's dual-counter
decode (paper Figure 7) reconstructs the line correctly in every epoch state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.memory import bitops
from repro.memory.line import StoredLine


@dataclass(slots=True)
class WriteOutcome:
    """Everything observable about one writeback's effect on the PCM cells.

    Attributes
    ----------
    address:
        Line address written.
    data_flips:
        Bits that changed among the stored data bits (after DCW — unchanged
        cells are not rewritten).
    metadata_flips:
        Bits that changed among the scheme metadata (FNW flip bits, DEUCE
        modified bits, mode bits).  Counted in the paper's figure of merit.
    flipped_data_positions:
        Bit indices (0..511) of the data bits that changed; feeds per-bit
        wear tracking (Figure 12, lifetime model).
    flipped_meta_positions:
        Metadata bit indices that changed, offset into the metadata region.
    set_flips / reset_flips:
        The data flips split by program direction (0->1 SETs vs 1->0
        RESETs); PCM programs are asymmetric in latency and power [2].
    words_reencrypted:
        For word-tracking schemes, how many words were re-encrypted on this
        write (diagnostic; 0 for schemes without word tracking).
    full_line_reencrypted:
        True when the scheme rewrote the entire line (e.g. DEUCE epoch
        start).
    epoch_reset:
        True when this write was an epoch-boundary re-encryption (tracking
        bits reset, whole line re-keyed).  Distinct from
        ``full_line_reencrypted``: DynDEUCE's FNW-mode writes re-encrypt
        the full line every write without resetting an epoch.
    mode_switched:
        True when the scheme changed operating mode on this write
        (DynDEUCE morphing DEUCE->FNW, or snapping back at an epoch start).
    mode:
        Free-form scheme mode label for diagnostics (DynDEUCE reports
        ``"deuce"`` or ``"fnw"``).
    """

    address: int
    data_flips: int
    metadata_flips: int = 0
    set_flips: int = 0
    reset_flips: int = 0
    flipped_data_positions: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    flipped_meta_positions: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    words_reencrypted: int = 0
    full_line_reencrypted: bool = False
    epoch_reset: bool = False
    mode_switched: bool = False
    mode: str = ""

    @property
    def total_flips(self) -> int:
        """Data + metadata flips — the paper's figure of merit per write."""
        return self.data_flips + self.metadata_flips


class WriteScheme(ABC):
    """A memory write policy (encryption and/or flip reduction).

    Concrete schemes own a per-address :class:`StoredLine` map.  The write
    path is split so subclasses only implement the interesting part:

    * :meth:`install` places a line for the first time (initial encryption
      when pages are brought into memory, per section 3.1).
    * :meth:`write` handles a writeback and returns a :class:`WriteOutcome`.
    * :meth:`read` returns the current plaintext.

    Attributes
    ----------
    name:
        Short identifier used in results tables.
    line_bytes:
        Cache-line size (64 in the paper).
    """

    name: str = "abstract"

    #: ``SimConfig`` field -> constructor keyword map read by
    #: :meth:`from_config`.  Subclasses extend this with the geometry knobs
    #: they consume (word size, epoch interval, FNW group width, ...).
    config_fields: ClassVar[dict[str, str]] = {"line_bytes": "line_bytes"}

    #: Whether the scheme encrypts and therefore needs a pad source as the
    #: first constructor argument.
    requires_pads: ClassVar[bool] = True

    #: Whether :meth:`write_batch` is a genuinely vectorized implementation.
    #: The chunked runner only batches schemes that set this; for the rest
    #: the generic per-write fallback below exists for tests and tooling but
    #: is slower than the serial loop.
    supports_write_batch: ClassVar[bool] = False

    def __init__(self, line_bytes: int = 64) -> None:
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        self.line_bytes = line_bytes
        self._lines: dict[int, StoredLine] = {}

    # -- storage accounting ------------------------------------------------

    @property
    @abstractmethod
    def metadata_bits_per_line(self) -> int:
        """Per-line storage overhead in bits, excluding the line counter.

        This is the column reported in the paper's Table 3.
        """

    @property
    def n_data_bits(self) -> int:
        return 8 * self.line_bytes

    # -- line lifecycle ----------------------------------------------------

    def install(self, address: int, plaintext: bytes) -> StoredLine:
        """Place a line into memory for the first time (initial encryption).

        Returns the stored image.  Installation is not counted as a
        writeback in the statistics, mirroring section 3.1 ("relevant pages
        have already been brought into memory and been initially
        encrypted").
        """
        self._check_line(plaintext)
        stored = self._install(address, plaintext)
        self._lines[address] = stored
        return stored

    @abstractmethod
    def _install(self, address: int, plaintext: bytes) -> StoredLine:
        """Scheme-specific initial placement."""

    def install_batch(self, addresses, data) -> None:
        """Install ``n`` lines at once (a working set's initial encryption).

        Parameters are ``(n,)`` int64 addresses and ``(n, line_bytes)``
        uint8 images.  The default implementation loops :meth:`install`;
        pad-based batch schemes override it to fetch the whole initial
        keystream in one wide pad call.  Either way the resulting scheme
        state — and the pad cache's LRU order and hit/miss statistics —
        is bit-identical to ``n`` sequential installs.
        """
        for i in range(len(addresses)):
            self.install(int(addresses[i]), bytes(data[i]))

    def write(self, address: int, plaintext: bytes) -> WriteOutcome:
        """Apply a writeback and report its cell-level effect."""
        self._check_line(plaintext)
        if address not in self._lines:
            raise KeyError(
                f"line {address:#x} was never installed; call install() first"
            )
        return self._write(address, plaintext)

    @abstractmethod
    def _write(self, address: int, plaintext: bytes) -> WriteOutcome:
        """Scheme-specific write path."""

    def write_batch(self, addresses, data) -> "BatchOutcome":
        """Apply ``m`` consecutive writebacks and report their effects.

        Parameters are ``(m,)`` int64 addresses and ``(m, line_bytes)``
        uint8 payloads, in trace order.  The default implementation loops
        :meth:`write` and packs the outcomes; vectorized schemes override
        it (and set :attr:`supports_write_batch`) to process the whole
        chunk as one array program.  Either way the result is bit-identical
        to ``m`` sequential :meth:`write` calls.
        """
        from repro.schemes.batch import BatchOutcome

        return BatchOutcome.from_outcomes(
            [
                self.write(int(addresses[i]), data[i].tobytes())
                for i in range(len(addresses))
            ]
        )

    @abstractmethod
    def read(self, address: int) -> bytes:
        """Return the plaintext currently stored at ``address``."""

    # -- construction ------------------------------------------------------

    @classmethod
    def from_config(cls, config, pads=None) -> "WriteScheme":
        """Instantiate from a config object (``SimConfig`` or duck-typed).

        Reads exactly the fields named in :attr:`config_fields`; schemes
        with :attr:`requires_pads` additionally receive the pad source as
        their first argument.  This is the single construction path behind
        both ``build_scheme(config)`` and ``make_scheme(name, ...)``.
        """
        if cls.requires_pads and pads is None:
            raise ValueError(f"scheme {cls.name!r} requires a pad source")
        kwargs = {
            kw: getattr(config, fieldname)
            for fieldname, kw in cls.config_fields.items()
        }
        if cls.requires_pads:
            return cls(pads, **kwargs)
        return cls(**kwargs)

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        """All mutable scheme state as arrays and JSON-safe scalars.

        The line map is packed into four parallel arrays in dict order
        (which :meth:`load_state_dict` preserves, so iteration order — and
        therefore every downstream decision that depends on it — survives a
        round trip).  Subclasses contribute additional state through
        :meth:`_extra_state`; its keys are namespaced under ``extra/`` so
        the two regions can never collide.
        """
        n = len(self._lines)
        addresses = np.empty(n, dtype=np.int64)
        counters = np.empty(n, dtype=np.int64)
        data = np.empty((n, self.line_bytes), dtype=np.uint8)
        meta_width = (
            next(iter(self._lines.values())).meta.size if n else 0
        )
        meta = np.empty((n, meta_width), dtype=np.uint8)
        for i, (addr, line) in enumerate(self._lines.items()):
            addresses[i] = addr
            counters[i] = line.counter
            data[i] = line.arr
            meta[i] = line.meta
        state: dict[str, object] = {
            "lines/addresses": addresses,
            "lines/counters": counters,
            "lines/data": data,
            "lines/meta": meta,
        }
        for key, value in self._extra_state().items():
            state[f"extra/{key}"] = value
        return state

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot bit-identically."""
        addresses = np.asarray(state["lines/addresses"], dtype=np.int64)
        counters = np.asarray(state["lines/counters"], dtype=np.int64)
        data = np.asarray(state["lines/data"], dtype=np.uint8)
        meta = np.asarray(state["lines/meta"], dtype=np.uint8)
        self._lines = {
            int(addresses[i]): StoredLine(
                data[i].copy(), meta[i].copy(), int(counters[i])
            )
            for i in range(addresses.size)
        }
        self._load_extra_state(
            {
                key[len("extra/"):]: value
                for key, value in state.items()
                if key.startswith("extra/")
            }
        )

    def _extra_state(self) -> dict[str, object]:
        """Scheme-specific mutable state beyond the line map."""
        return {}

    def _load_extra_state(self, extra: dict[str, object]) -> None:
        if extra:
            raise ValueError(
                f"scheme {self.name!r} has no extra state, got {sorted(extra)}"
            )

    # -- shared helpers ----------------------------------------------------

    def stored(self, address: int) -> StoredLine:
        """The physical image of a line (for wear tracking and tests)."""
        return self._lines[address]

    def addresses(self) -> list[int]:
        return list(self._lines)

    def _check_line(self, data: bytes) -> None:
        if len(data) != self.line_bytes:
            raise ValueError(
                f"line must be {self.line_bytes} bytes, got {len(data)}"
            )

    def _outcome(
        self,
        address: int,
        old: StoredLine,
        new: StoredLine,
        **extra: object,
    ) -> WriteOutcome:
        """Diff two stored images into a :class:`WriteOutcome`.

        Data Comparison Write is implicit here: only differing cells count
        as flips, because PCM never rewrites a cell that already holds the
        target value (section 1, [7]).
        """
        # Dense diff: at 64 bytes, one unpackbits beats the sparse kernel's
        # extra numpy dispatches, and the xor is reused for the SET count
        # ((a ^ b) & b selects exactly the 0->1 transitions).
        diff = old.arr ^ new.arr
        data_positions = np.unpackbits(diff).nonzero()[0]
        n_data = int(data_positions.size)
        sets = int(bitops.byte_popcounts(diff & new.arr).sum()) if n_data else 0
        meta_positions = (old.meta != new.meta).nonzero()[0]
        return WriteOutcome(
            address=address,
            data_flips=n_data,
            metadata_flips=int(meta_positions.size),
            set_flips=sets,
            reset_flips=n_data - sets,
            flipped_data_positions=data_positions,
            flipped_meta_positions=meta_positions,
            **extra,  # type: ignore[arg-type]
        )
