"""DEUCE — Dual Counter Encryption (paper section 4).

DEUCE keeps one physical per-line counter but derives two *virtual* counters
from it:

* **LCTR** (leading counter): the line counter itself, incremented on every
  write.
* **TCTR** (trailing counter): LCTR with the ``log2(epoch_interval)`` least
  significant bits masked off.  It therefore equals LCTR once every
  ``epoch_interval`` writes — the start of an *epoch* — and is frozen in
  between.

Each tracked word carries one *modified bit*.  At an epoch start the whole
line is re-encrypted with the fresh counter and all modified bits reset.  In
between, a write re-encrypts (with LCTR) exactly the words whose modified bit
is set — words written at least once this epoch — while untouched words keep
their TCTR-encrypted image in the cells, contributing zero flips.

Decryption (Figure 7) generates both pads and muxes per word on the modified
bit.  Security (section 4.3.5): a pad value is only ever XORed with data when
the counter is fresh, so no pad is reused with different data; the
pad-uniqueness auditor in :mod:`repro.security.invariants` checks this
mechanically.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.ctr import mix_pads
from repro.crypto.pads import PadSource
from repro.memory import bitops
from repro.memory.line import StoredLine
from repro.schemes.base import WriteOutcome, WriteScheme


def _check_epoch_interval(epoch_interval: int) -> int:
    if epoch_interval < 2 or epoch_interval & (epoch_interval - 1):
        raise ValueError(
            "epoch_interval must be a power of two >= 2 (LSB masking), got "
            f"{epoch_interval}"
        )
    return epoch_interval


class Deuce(WriteScheme):
    """Dual Counter Encryption.

    Parameters
    ----------
    pads:
        Counter-mode pad source.
    line_bytes:
        Cache-line size (64).
    word_bytes:
        Tracking granularity; the paper's default is 2 bytes (32 modified
        bits per 64-byte line).  Section 4.4 sweeps 1/2/4/8.
    epoch_interval:
        Writes between full-line re-encryptions; power of two.  The paper's
        default is 32 (section 4.5 sweeps 8/16/32).
    """

    name = "deuce"

    def __init__(
        self,
        pads: PadSource,
        line_bytes: int = 64,
        word_bytes: int = 2,
        epoch_interval: int = 32,
    ) -> None:
        super().__init__(line_bytes)
        if word_bytes <= 0 or line_bytes % word_bytes != 0:
            raise ValueError(
                f"word_bytes={word_bytes} must divide line_bytes={line_bytes}"
            )
        self.pads = pads
        self.word_bytes = word_bytes
        self.n_words = line_bytes // word_bytes
        self.epoch_interval = _check_epoch_interval(epoch_interval)
        self._epoch_mask = ~(epoch_interval - 1)

    # -- counters -----------------------------------------------------------

    def leading_counter(self, line: StoredLine) -> int:
        return line.counter

    def trailing_counter(self, line: StoredLine) -> int:
        return line.counter & self._epoch_mask

    @property
    def metadata_bits_per_line(self) -> int:
        return self.n_words

    # -- pads ----------------------------------------------------------------

    def _pad(self, address: int, counter: int) -> bytes:
        return self.pads.line_pad(address, counter, self.line_bytes)

    def _effective_pad(self, address: int, line: StoredLine) -> bytes:
        """The per-word-muxed pad for the line's current state (Figure 7)."""
        lctr = self.leading_counter(line)
        tctr = self.trailing_counter(line)
        modified = [bool(b) for b in line.meta]
        if lctr == tctr or not any(modified):
            return self._pad(address, lctr if lctr == tctr else tctr)
        return mix_pads(
            self._pad(address, lctr),
            self._pad(address, tctr),
            modified,
            self.word_bytes,
        )

    # -- lifecycle -----------------------------------------------------------

    def _install(self, address: int, plaintext: bytes) -> StoredLine:
        stored = bitops.xor(plaintext, self._pad(address, 0))
        return StoredLine(stored, np.zeros(self.n_words, dtype=np.uint8), 0)

    def read(self, address: int) -> bytes:
        line = self._lines[address]
        return bitops.xor(line.data, self._effective_pad(address, line))

    def _write(self, address: int, plaintext: bytes) -> WriteOutcome:
        old = self._lines[address]
        old_plain = self.read(address)  # the read-before-write of 4.3.2
        counter = old.counter + 1

        if counter % self.epoch_interval == 0:
            new = self._epoch_write(address, plaintext, counter)
            outcome = self._outcome(
                address,
                old,
                new,
                words_reencrypted=self.n_words,
                full_line_reencrypted=True,
                mode="deuce",
            )
        else:
            new, n_reenc = self._partial_write(
                address, old, old_plain, plaintext, counter
            )
            outcome = self._outcome(
                address,
                old,
                new,
                words_reencrypted=n_reenc,
                full_line_reencrypted=False,
                mode="deuce",
            )
        self._lines[address] = new
        return outcome

    def _epoch_write(
        self, address: int, plaintext: bytes, counter: int
    ) -> StoredLine:
        """Epoch start: full re-encryption, modified bits reset."""
        stored = bitops.xor(plaintext, self._pad(address, counter))
        return StoredLine(stored, np.zeros(self.n_words, dtype=np.uint8), counter)

    def _partial_write(
        self,
        address: int,
        old: StoredLine,
        old_plain: bytes,
        plaintext: bytes,
        counter: int,
    ) -> tuple[StoredLine, int]:
        """Mid-epoch write: re-encrypt the epoch's modified-word set."""
        newly_modified = bitops.changed_words(old_plain, plaintext, self.word_bytes)
        meta = old.meta.copy()
        meta[newly_modified] = 1

        modified = [bool(b) for b in meta]
        tctr = counter & self._epoch_mask
        pad = mix_pads(
            self._pad(address, counter),
            self._pad(address, tctr),
            modified,
            self.word_bytes,
        )
        stored = bitops.xor(plaintext, pad)
        return StoredLine(stored, meta, counter), int(sum(modified))
