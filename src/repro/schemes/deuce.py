"""DEUCE — Dual Counter Encryption (paper section 4).

DEUCE keeps one physical per-line counter but derives two *virtual* counters
from it:

* **LCTR** (leading counter): the line counter itself, incremented on every
  write.
* **TCTR** (trailing counter): LCTR with the ``log2(epoch_interval)`` least
  significant bits masked off.  It therefore equals LCTR once every
  ``epoch_interval`` writes — the start of an *epoch* — and is frozen in
  between.

Each tracked word carries one *modified bit*.  At an epoch start the whole
line is re-encrypted with the fresh counter and all modified bits reset.  In
between, a write re-encrypts (with LCTR) exactly the words whose modified bit
is set — words written at least once this epoch — while untouched words keep
their TCTR-encrypted image in the cells, contributing zero flips.

Decryption (Figure 7) generates both pads and muxes per word on the modified
bit.  Security (section 4.3.5): a pad value is only ever XORed with data when
the counter is fresh, so no pad is reused with different data; the
pad-uniqueness auditor in :mod:`repro.security.invariants` checks this
mechanically.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.ctr import mix_pads_array
from repro.crypto.pads import PadSource
from repro.memory import bitops
from repro.memory.line import StoredLine
from repro.schemes.base import WriteOutcome, WriteScheme


def _check_epoch_interval(epoch_interval: int) -> int:
    if epoch_interval < 2 or epoch_interval & (epoch_interval - 1):
        raise ValueError(
            "epoch_interval must be a power of two >= 2 (LSB masking), got "
            f"{epoch_interval}"
        )
    return epoch_interval


class Deuce(WriteScheme):
    """Dual Counter Encryption.

    Parameters
    ----------
    pads:
        Counter-mode pad source.
    line_bytes:
        Cache-line size (64).
    word_bytes:
        Tracking granularity; the paper's default is 2 bytes (32 modified
        bits per 64-byte line).  Section 4.4 sweeps 1/2/4/8.
    epoch_interval:
        Writes between full-line re-encryptions; power of two.  The paper's
        default is 32 (section 4.5 sweeps 8/16/32).
    """

    name = "deuce"

    config_fields = {
        "line_bytes": "line_bytes",
        "word_bytes": "word_bytes",
        "epoch_interval": "epoch_interval",
    }

    def __init__(
        self,
        pads: PadSource,
        line_bytes: int = 64,
        word_bytes: int = 2,
        epoch_interval: int = 32,
    ) -> None:
        super().__init__(line_bytes)
        if word_bytes <= 0 or line_bytes % word_bytes != 0:
            raise ValueError(
                f"word_bytes={word_bytes} must divide line_bytes={line_bytes}"
            )
        self.pads = pads
        self.word_bytes = word_bytes
        self.n_words = line_bytes // word_bytes
        self.epoch_interval = _check_epoch_interval(epoch_interval)
        self._epoch_mask = ~(epoch_interval - 1)
        # Plaintext memo: the simulator's stand-in for the controller's
        # read-before-write (4.3.2).  Decryption through read() stays fully
        # functional; the memo only spares the write path re-deriving a
        # plaintext it wrote itself.
        self._plain: dict[int, np.ndarray] = {}

    # -- counters -----------------------------------------------------------

    def leading_counter(self, line: StoredLine) -> int:
        return line.counter

    def trailing_counter(self, line: StoredLine) -> int:
        return line.counter & self._epoch_mask

    @property
    def metadata_bits_per_line(self) -> int:
        return self.n_words

    # -- pads ----------------------------------------------------------------

    def _pad(self, address: int, counter: int) -> np.ndarray:
        """The full-line pad for (address, counter) as a uint8 array."""
        return self.pads.line_pad_array(address, counter, self.line_bytes)

    def _effective_pad(self, address: int, line: StoredLine) -> np.ndarray:
        """The per-word-muxed pad for the line's current state (Figure 7)."""
        lctr = self.leading_counter(line)
        tctr = self.trailing_counter(line)
        if lctr == tctr or not line.meta.any():
            return self._pad(address, lctr if lctr == tctr else tctr)
        return mix_pads_array(
            self._pad(address, lctr),
            self._pad(address, tctr),
            line.meta,
            self.word_bytes,
        )

    # -- checkpointing -------------------------------------------------------

    def _extra_state(self) -> dict[str, object]:
        n = len(self._plain)
        addresses = np.empty(n, dtype=np.int64)
        plain = np.empty((n, self.line_bytes), dtype=np.uint8)
        for i, (addr, arr) in enumerate(self._plain.items()):
            addresses[i] = addr
            plain[i] = arr
        return {"plain_addresses": addresses, "plain_data": plain}

    def _load_extra_state(self, extra: dict[str, object]) -> None:
        addresses = np.asarray(extra["plain_addresses"], dtype=np.int64)
        plain = np.asarray(extra["plain_data"], dtype=np.uint8)
        self._plain = {
            int(addresses[i]): plain[i].copy()
            for i in range(addresses.size)
        }

    # -- lifecycle -----------------------------------------------------------

    def _install(self, address: int, plaintext: bytes) -> StoredLine:
        plain = bitops.as_array(plaintext)
        self._plain[address] = plain
        stored = plain ^ self._pad(address, 0)
        return StoredLine(stored, np.zeros(self.n_words, dtype=np.uint8), 0)

    def read(self, address: int) -> bytes:
        line = self._lines[address]
        return bitops.to_bytes(line.arr ^ self._effective_pad(address, line))

    def _write(self, address: int, plaintext: bytes) -> WriteOutcome:
        old = self._lines[address]
        # The read-before-write of 4.3.2: decrypt unless memoized.
        old_plain = self._plain.get(address)
        if old_plain is None:
            old_plain = old.arr ^ self._effective_pad(address, old)
        counter = old.counter + 1
        new_plain = bitops.as_array(plaintext)

        if counter % self.epoch_interval == 0:
            new = self._epoch_write(address, new_plain, counter)
            n_reenc, full = self.n_words, True
        else:
            new, n_reenc = self._partial_write(
                address, old, old_plain, new_plain, counter
            )
            full = False
        self._lines[address] = new
        self._plain[address] = new_plain
        return self._outcome(
            address,
            old,
            new,
            words_reencrypted=n_reenc,
            full_line_reencrypted=full,
            epoch_reset=full,
            mode="deuce",
        )

    def _epoch_write(
        self, address: int, new_plain: np.ndarray, counter: int
    ) -> StoredLine:
        """Epoch start: full re-encryption, modified bits reset."""
        stored = new_plain ^ self._pad(address, counter)
        return StoredLine(stored, np.zeros(self.n_words, dtype=np.uint8), counter)

    def _partial_write(
        self,
        address: int,
        old: StoredLine,
        old_plain: np.ndarray,
        new_plain: np.ndarray,
        counter: int,
    ) -> tuple[StoredLine, int]:
        """Mid-epoch write: re-encrypt the epoch's modified-word set.

        Words outside the modified set keep their TCTR-encrypted cell image
        byte-for-byte (mid-epoch, the trailing counter is unchanged and so
        is their data), so only the leading-counter pad is ever generated —
        the stored image is the old one with the modified words overwritten
        by ``plaintext ^ LCTR-pad``.
        """
        reenc = new_plain ^ self._pad(address, counter)
        dtype = bitops.WORD_DTYPES.get(self.word_bytes)
        if dtype is not None and old.arr.flags.c_contiguous:
            # Wide-dtype fast path: word compare, meta merge, and stored-word
            # selection each as one whole-word operation.
            changed = old_plain.view(dtype) != new_plain.view(dtype)
            meta = old.meta | changed
            stored = np.where(
                meta.view(np.bool_), reenc.view(dtype), old.arr.view(dtype)
            ).view(np.uint8)
        else:
            newly_modified = bitops.changed_words_array(
                old_plain, new_plain, self.word_bytes
            )
            meta = old.meta.copy()
            meta[newly_modified] = 1
            byte_mask = np.repeat(meta.view(np.bool_), self.word_bytes)
            stored = np.where(byte_mask, reenc, old.arr)
        return StoredLine(stored, meta, counter), int(np.count_nonzero(meta))
