"""DEUCE — Dual Counter Encryption (paper section 4).

DEUCE keeps one physical per-line counter but derives two *virtual* counters
from it:

* **LCTR** (leading counter): the line counter itself, incremented on every
  write.
* **TCTR** (trailing counter): LCTR with the ``log2(epoch_interval)`` least
  significant bits masked off.  It therefore equals LCTR once every
  ``epoch_interval`` writes — the start of an *epoch* — and is frozen in
  between.

Each tracked word carries one *modified bit*.  At an epoch start the whole
line is re-encrypted with the fresh counter and all modified bits reset.  In
between, a write re-encrypts (with LCTR) exactly the words whose modified bit
is set — words written at least once this epoch — while untouched words keep
their TCTR-encrypted image in the cells, contributing zero flips.

Decryption (Figure 7) generates both pads and muxes per word on the modified
bit.  Security (section 4.3.5): a pad value is only ever XORed with data when
the counter is fresh, so no pad is reused with different data; the
pad-uniqueness auditor in :mod:`repro.security.invariants` checks this
mechanically.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.ctr import mix_pads_array
from repro.crypto.pads import PadSource
from repro.memory import bitops
from repro.memory.line import StoredLine
from repro.schemes.base import WriteOutcome, WriteScheme
from repro.schemes.batch import (
    BatchOutcome,
    diff_stored_rows,
    empty_batch,
    group_by_address,
    previous_rows,
)


def _check_epoch_interval(epoch_interval: int) -> int:
    if epoch_interval < 2 or epoch_interval & (epoch_interval - 1):
        raise ValueError(
            "epoch_interval must be a power of two >= 2 (LSB masking), got "
            f"{epoch_interval}"
        )
    return epoch_interval


class _DenseLines:
    """Structure-of-arrays line state for the batched write path.

    The chunked loop reads and commits whole address groups per chunk;
    keeping counters, stored images, metadata, and the plaintext memo as
    parallel arrays turns both into a handful of fancy-index gathers and
    scatters instead of thousands of per-line ``StoredLine`` constructions.
    ``index`` maps a line address to its row.  The dict-of-``StoredLine``
    view every serial accessor expects is materialized lazily by
    ``Deuce._flush_dense`` — results are bit-identical either way.
    """

    __slots__ = ("index", "counters", "stored", "meta", "plain")

    def __init__(
        self,
        index: dict[int, int],
        counters: np.ndarray,
        stored: np.ndarray,
        meta: np.ndarray,
        plain: np.ndarray,
    ) -> None:
        self.index = index
        self.counters = counters
        self.stored = stored
        self.meta = meta
        self.plain = plain


class Deuce(WriteScheme):
    """Dual Counter Encryption.

    Parameters
    ----------
    pads:
        Counter-mode pad source.
    line_bytes:
        Cache-line size (64).
    word_bytes:
        Tracking granularity; the paper's default is 2 bytes (32 modified
        bits per 64-byte line).  Section 4.4 sweeps 1/2/4/8.
    epoch_interval:
        Writes between full-line re-encryptions; power of two.  The paper's
        default is 32 (section 4.5 sweeps 8/16/32).
    """

    name = "deuce"

    supports_write_batch = True

    config_fields = {
        "line_bytes": "line_bytes",
        "word_bytes": "word_bytes",
        "epoch_interval": "epoch_interval",
    }

    def __init__(
        self,
        pads: PadSource,
        line_bytes: int = 64,
        word_bytes: int = 2,
        epoch_interval: int = 32,
    ) -> None:
        super().__init__(line_bytes)
        if word_bytes <= 0 or line_bytes % word_bytes != 0:
            raise ValueError(
                f"word_bytes={word_bytes} must divide line_bytes={line_bytes}"
            )
        self.pads = pads
        self.word_bytes = word_bytes
        self.n_words = line_bytes // word_bytes
        self.epoch_interval = _check_epoch_interval(epoch_interval)
        self._epoch_mask = ~(epoch_interval - 1)
        # Plaintext memo: the simulator's stand-in for the controller's
        # read-before-write (4.3.2).  Decryption through read() stays fully
        # functional; the memo only spares the write path re-deriving a
        # plaintext it wrote itself.
        self._plain: dict[int, np.ndarray] = {}
        # Dense batch state (see _DenseLines); None until a batch call
        # needs it.  ``_dense_dirty`` marks commits not yet reflected in
        # the ``_lines``/``_plain`` dicts.
        self._dense: _DenseLines | None = None
        self._dense_dirty = False

    # -- counters -----------------------------------------------------------

    def leading_counter(self, line: StoredLine) -> int:
        return line.counter

    def trailing_counter(self, line: StoredLine) -> int:
        return line.counter & self._epoch_mask

    @property
    def metadata_bits_per_line(self) -> int:
        return self.n_words

    # -- pads ----------------------------------------------------------------

    def _pad(self, address: int, counter: int) -> np.ndarray:
        """The full-line pad for (address, counter) as a uint8 array."""
        return self.pads.line_pad_array(address, counter, self.line_bytes)

    def _effective_pad(self, address: int, line: StoredLine) -> np.ndarray:
        """The per-word-muxed pad for the line's current state (Figure 7)."""
        lctr = self.leading_counter(line)
        tctr = self.trailing_counter(line)
        if lctr == tctr or not line.meta.any():
            return self._pad(address, lctr if lctr == tctr else tctr)
        return mix_pads_array(
            self._pad(address, lctr),
            self._pad(address, tctr),
            line.meta,
            self.word_bytes,
        )

    # -- dense batch state ---------------------------------------------------

    def _ensure_dense(self) -> _DenseLines:
        """The SoA view of the line state, built from the dicts on demand."""
        dense = self._dense
        if dense is None:
            n = len(self._lines)
            index: dict[int, int] = {}
            counters = np.empty(n, dtype=np.int64)
            stored = np.empty((n, self.line_bytes), dtype=np.uint8)
            meta = np.empty((n, self.n_words), dtype=np.uint8)
            plain = np.empty((n, self.line_bytes), dtype=np.uint8)
            plain_get = self._plain.get
            for i, (addr, line) in enumerate(self._lines.items()):
                index[addr] = i
                counters[i] = line.counter
                stored[i] = line.arr
                meta[i] = line.meta
                p = plain_get(addr)
                if p is None:
                    p = line.arr ^ self._effective_pad(addr, line)
                plain[i] = p
            dense = self._dense = _DenseLines(
                index, counters, stored, meta, plain
            )
        return dense

    def _flush_dense(self) -> None:
        """Materialize pending dense commits back into the line dicts.

        Called by every serial accessor, so the dict view is always current
        when something outside the batch path looks at it.  Snapshot copies
        are taken so later batch commits can keep mutating the dense arrays
        without aliasing the handed-out ``StoredLine`` images.
        """
        dense = self._dense
        if dense is None or not self._dense_dirty:
            return
        stored = dense.stored.copy()
        meta = dense.meta.copy()
        plain = dense.plain.copy()
        stored.setflags(write=False)
        meta.setflags(write=False)
        plain.setflags(write=False)
        counters = dense.counters.tolist()
        from_parts = StoredLine.from_parts
        lines: dict[int, StoredLine] = {}
        memo: dict[int, np.ndarray] = {}
        for addr, i in dense.index.items():
            lines[addr] = from_parts(stored[i], meta[i], counters[i])
            memo[addr] = plain[i]
        self._lines = lines
        self._plain = memo
        self._dense_dirty = False

    def _drop_dense(self) -> None:
        """Flush and discard the dense view (before serial-path mutation)."""
        self._flush_dense()
        self._dense = None

    def install(self, address: int, plaintext: bytes) -> StoredLine:
        self._drop_dense()
        return super().install(address, plaintext)

    def write(self, address: int, plaintext: bytes) -> WriteOutcome:
        self._drop_dense()
        return super().write(address, plaintext)

    def stored(self, address: int) -> StoredLine:
        self._flush_dense()
        return super().stored(address)

    def addresses(self) -> list[int]:
        self._flush_dense()
        return super().addresses()

    def state_dict(self) -> dict[str, object]:
        self._flush_dense()
        return super().state_dict()

    def load_state_dict(self, state: dict[str, object]) -> None:
        self._dense = None
        self._dense_dirty = False
        super().load_state_dict(state)

    # -- checkpointing -------------------------------------------------------

    def _extra_state(self) -> dict[str, object]:
        n = len(self._plain)
        addresses = np.empty(n, dtype=np.int64)
        plain = np.empty((n, self.line_bytes), dtype=np.uint8)
        for i, (addr, arr) in enumerate(self._plain.items()):
            addresses[i] = addr
            plain[i] = arr
        return {"plain_addresses": addresses, "plain_data": plain}

    def _load_extra_state(self, extra: dict[str, object]) -> None:
        addresses = np.asarray(extra["plain_addresses"], dtype=np.int64)
        plain = np.asarray(extra["plain_data"], dtype=np.uint8)
        self._plain = {
            int(addresses[i]): plain[i].copy()
            for i in range(addresses.size)
        }

    # -- lifecycle -----------------------------------------------------------

    def _install(self, address: int, plaintext: bytes) -> StoredLine:
        plain = bitops.as_array(plaintext)
        self._plain[address] = plain
        stored = plain ^ self._pad(address, 0)
        return StoredLine(stored, np.zeros(self.n_words, dtype=np.uint8), 0)

    def install_batch(self, addresses, data) -> None:
        """Vectorized initial encryption: one pad batch for the working set.

        On a virgin scheme the computed arrays directly become the dense
        batch state; installing over existing lines falls back to the dict
        commit so re-installs keep their serial semantics.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        plain = np.array(data, dtype=np.uint8)
        if plain.ndim != 2 or plain.shape[1] != self.line_bytes:
            raise ValueError(
                f"lines must be (n, {self.line_bytes}), got {plain.shape}"
            )
        n = addresses.size
        pads = np.asarray(
            self.pads.line_pads_batch(
                addresses, np.zeros(n, dtype=np.int64), self.line_bytes
            )
        )
        stored = plain ^ pads
        addr_list = addresses.tolist()
        if self._dense is None and not self._lines:
            # Duplicate addresses resolve last-wins through the index while
            # preserving first-occurrence flush order, same as dict stores.
            index = {addr: i for i, addr in enumerate(addr_list)}
            self._dense = _DenseLines(
                index,
                np.zeros(n, dtype=np.int64),
                stored,
                np.zeros((n, self.n_words), dtype=np.uint8),
                plain,
            )
            self._dense_dirty = True
            return
        self._drop_dense()
        plain.setflags(write=False)
        stored.setflags(write=False)
        metas = np.zeros((n, self.n_words), dtype=np.uint8)
        metas.setflags(write=False)
        from_parts = StoredLine.from_parts
        lines, memo = self._lines, self._plain
        for addr, p_row, s_row, m_row in zip(addr_list, plain, stored, metas):
            memo[addr] = p_row
            lines[addr] = from_parts(s_row, m_row, 0)

    def read(self, address: int) -> bytes:
        self._flush_dense()
        line = self._lines[address]
        return bitops.to_bytes(line.arr ^ self._effective_pad(address, line))

    def _write(self, address: int, plaintext: bytes) -> WriteOutcome:
        old = self._lines[address]
        # The read-before-write of 4.3.2: decrypt unless memoized.
        old_plain = self._plain.get(address)
        if old_plain is None:
            old_plain = old.arr ^ self._effective_pad(address, old)
        counter = old.counter + 1
        new_plain = bitops.as_array(plaintext)

        if counter % self.epoch_interval == 0:
            new = self._epoch_write(address, new_plain, counter)
            n_reenc, full = self.n_words, True
        else:
            new, n_reenc = self._partial_write(
                address, old, old_plain, new_plain, counter
            )
            full = False
        self._lines[address] = new
        self._plain[address] = new_plain
        return self._outcome(
            address,
            old,
            new,
            words_reencrypted=n_reenc,
            full_line_reencrypted=full,
            epoch_reset=full,
            mode="deuce",
        )

    def write_batch(self, addresses, data) -> BatchOutcome:
        """Vectorized DEUCE over a whole trace chunk.

        The chunk is stable-sorted by address so each line's writes form
        one contiguous run with counters ``c0 + 1 .. c0 + k``.  Epoch
        writes (``counter % epoch_interval == 0``) reset the modified bits,
        so the per-word meta evolution is a *segmented* cumulative OR of
        the changed-word matrix — segments start at each run's first row
        and immediately after every epoch write, and the OR is computed for
        all words of all writes at once via a cumulative-sum difference.
        Stored images follow from the meta: a word's bytes come from the
        fresh LCTR re-encryption when its modified bit is set, otherwise
        from the segment's base image (the pre-chunk cells, or the last
        epoch write's full re-encryption).  Flips are then one wide XOR +
        popcount over consecutive stored images.  Bit-identical to ``m``
        sequential :meth:`write` calls, including pad-cache statistics
        (pads are requested in original trace order).
        """
        m = len(addresses)
        if m == 0:
            return empty_batch()
        groups = group_by_address(addresses, data)
        s_data = groups.data
        starts = groups.starts
        n_groups = starts.size
        line_bytes, n_words, word_bytes = (
            self.line_bytes, self.n_words, self.word_bytes
        )

        # Pre-chunk state per line: one row-index lookup per unique address,
        # then pure fancy-index gathers from the dense SoA state.
        dense = self._ensure_dense()
        index = dense.index
        uniq_list = groups.unique_addresses.tolist()
        try:
            rows_idx = np.fromiter(
                (index[a] for a in uniq_list), dtype=np.int64, count=n_groups
            )
        except KeyError:
            missing = next(a for a in uniq_list if a not in index)
            raise KeyError(
                f"line {missing:#x} was never installed; call install() first"
            ) from None
        base_counters = dense.counters[rows_idx]
        old_stored = dense.stored[rows_idx]
        old_meta = dense.meta[rows_idx]
        old_plain = dense.plain[rows_idx]

        counters = base_counters[groups.group_id] + groups.rank + 1
        epoch = (counters & (self.epoch_interval - 1)) == 0
        epoch_rows = np.flatnonzero(epoch)

        # Pads are fetched in original trace order so the LRU cache sees the
        # identical request stream as the per-write path.
        counters_orig = np.empty(m, dtype=np.int64)
        counters_orig[groups.order] = counters
        pads = self.pads.line_pads_batch(
            np.asarray(addresses, dtype=np.int64), counters_orig, line_bytes
        )
        pads_sorted = np.ascontiguousarray(np.asarray(pads)[groups.order])

        # Changed words vs the previous plaintext in the run.
        prev_plain = previous_rows(s_data, starts, old_plain)
        dtype = bitops.WORD_DTYPES.get(word_bytes)
        if dtype is not None:
            changed = prev_plain.view(dtype) != s_data.view(dtype)
        else:
            changed = (
                prev_plain.reshape(m, n_words, word_bytes)
                != s_data.reshape(m, n_words, word_bytes)
            ).any(axis=2)

        # Segmented cumulative OR: fold each run's pre-chunk meta into its
        # first row, then a word is modified iff its latest contribution row
        # (a running maximum) falls inside the current segment.  Segment
        # boundaries are run starts and the row after every epoch write (the
        # reset); an epoch row's own meta is forced to zero.
        contrib = changed  # fresh comparison result; safe to mutate in place
        contrib[starts] |= old_meta != 0
        row_idx = np.arange(m, dtype=np.int32)
        seg_mark = np.zeros(m, dtype=bool)
        seg_mark[starts] = True
        after_epoch = epoch_rows + 1
        seg_mark[after_epoch[after_epoch < m]] = True
        seg_begin = np.maximum.accumulate(
            np.where(seg_mark, row_idx, np.int32(0))
        )
        last_set = np.maximum.accumulate(
            np.where(contrib, row_idx[:, None], np.int32(-1)), axis=0
        )
        meta = last_set >= seg_begin[:, None]
        meta[epoch_rows] = False
        meta_u8 = meta.astype(np.uint8)
        words_reencrypted = np.where(
            epoch, n_words, meta.sum(axis=1, dtype=np.int64)
        )

        # Stored images.  Mid-epoch, unmodified words keep the segment's
        # base image: the last epoch write's full re-encryption, or the
        # pre-chunk cells when the run hasn't hit an epoch yet.  The base
        # is assembled in place: start from the pre-chunk cells, overwrite
        # the rows following an in-chunk epoch, then overlay the modified
        # words' fresh re-encryptions through the byte mask.
        reenc = s_data ^ pads_sorted
        stored = old_stored[groups.group_id]
        last_epoch = np.maximum.accumulate(np.where(epoch, row_idx, np.int32(-1)))
        in_run = np.flatnonzero(last_epoch >= starts[groups.group_id])
        if in_run.size:
            stored[in_run] = reenc[last_epoch[in_run]]
        byte_mask = (
            meta if word_bytes == 1 else np.repeat(meta, word_bytes, axis=1)
        )
        np.copyto(stored, reenc, where=byte_mask)
        stored[epoch_rows] = reenc[epoch_rows]

        prev_stored = previous_rows(stored, starts, old_stored)
        prev_meta = previous_rows(meta_u8, starts, old_meta)
        diffs = diff_stored_rows(prev_stored, stored, prev_meta, meta_u8)

        # Commit each line's final state: one fancy-index scatter per dense
        # array.  The dict view is refreshed lazily by _flush_dense when a
        # serial accessor next needs it.
        last_rows = groups.last_rows
        dense.counters[rows_idx] = counters[last_rows]
        dense.stored[rows_idx] = stored[last_rows]
        dense.meta[rows_idx] = meta_u8[last_rows]
        dense.plain[rows_idx] = s_data[last_rows]
        self._dense_dirty = True

        return BatchOutcome(
            addresses=groups.addresses,
            words_reencrypted=words_reencrypted.astype(np.int64, copy=False),
            full_line_reencrypted=epoch,
            epoch_reset=epoch,
            mode_switched=np.zeros(m, dtype=bool),
            mode_counts={"deuce": m},
            **diffs,
        )

    def _epoch_write(
        self, address: int, new_plain: np.ndarray, counter: int
    ) -> StoredLine:
        """Epoch start: full re-encryption, modified bits reset."""
        stored = new_plain ^ self._pad(address, counter)
        return StoredLine(stored, np.zeros(self.n_words, dtype=np.uint8), counter)

    def _partial_write(
        self,
        address: int,
        old: StoredLine,
        old_plain: np.ndarray,
        new_plain: np.ndarray,
        counter: int,
    ) -> tuple[StoredLine, int]:
        """Mid-epoch write: re-encrypt the epoch's modified-word set.

        Words outside the modified set keep their TCTR-encrypted cell image
        byte-for-byte (mid-epoch, the trailing counter is unchanged and so
        is their data), so only the leading-counter pad is ever generated —
        the stored image is the old one with the modified words overwritten
        by ``plaintext ^ LCTR-pad``.
        """
        reenc = new_plain ^ self._pad(address, counter)
        dtype = bitops.WORD_DTYPES.get(self.word_bytes)
        if dtype is not None and old.arr.flags.c_contiguous:
            # Wide-dtype fast path: word compare, meta merge, and stored-word
            # selection each as one whole-word operation.
            changed = old_plain.view(dtype) != new_plain.view(dtype)
            meta = old.meta | changed
            stored = np.where(
                meta.view(np.bool_), reenc.view(dtype), old.arr.view(dtype)
            ).view(np.uint8)
        else:
            newly_modified = bitops.changed_words_array(
                old_plain, new_plain, self.word_bytes
            )
            meta = old.meta.copy()
            meta[newly_modified] = 1
            byte_mask = np.repeat(meta.view(np.bool_), self.word_bytes)
            stored = np.where(byte_mask, reenc, old.arr)
        return StoredLine(stored, meta, counter), int(np.count_nonzero(meta))
