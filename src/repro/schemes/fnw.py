"""Flip-N-Write (FNW) [Cho & Lee, MICRO'09].

FNW partitions the line into small groups (two bytes in the paper's default,
one flip bit per 16 data bits) and stores each group either as-is or
bit-inverted, choosing whichever representation is closer to what the cells
already hold.  This bounds the flips per group to half the group size plus
the flip bit.

The group encode/decode logic lives in :class:`FnwCodec` so that the
encrypted variant, DynDEUCE's FNW mode, and DEUCE+FNW can all reuse it.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.pads import PadSource
from repro.memory import bitops
from repro.memory.line import StoredLine, make_meta
from repro.schemes.base import WriteOutcome, WriteScheme


class FnwCodec:
    """Encode/decode lines under Flip-N-Write at a fixed group size.

    Parameters
    ----------
    line_bytes:
        Line size in bytes.
    group_bits:
        Data bits covered by one flip bit (16 in the paper: "FNW at a
        granularity of two bytes, where 1 flip bit is provisioned per 16
        bits").  Must be a multiple of 8 here; sub-byte groups would not
        change any conclusion and complicate the byte-level model.
    """

    def __init__(self, line_bytes: int = 64, group_bits: int = 16) -> None:
        if group_bits <= 0 or group_bits % 8 != 0:
            raise ValueError("group_bits must be a positive multiple of 8")
        if (line_bytes * 8) % group_bits != 0:
            raise ValueError(
                f"{line_bytes * 8} data bits is not a whole number of "
                f"{group_bits}-bit groups"
            )
        self.line_bytes = line_bytes
        self.group_bits = group_bits
        self.group_bytes = group_bits // 8
        self.n_groups = (line_bytes * 8) // group_bits

    def encode_array(
        self,
        old_arr: np.ndarray,
        old_flip_bits: np.ndarray,
        tgt_arr: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Array-native :meth:`encode` over uint8 line images.

        For every group, compares the cost (data flips + flip-bit flip) of
        storing the group plain versus inverted, relative to what the cells
        currently hold.  Ties keep the current flip bit so metadata does not
        churn needlessly.

        Returns the new stored array and the new flip-bit vector.
        """
        inv_arr = ~tgt_arr

        per_byte = bitops.byte_popcounts(old_arr ^ tgt_arr)
        dist_plain = per_byte.reshape(self.n_groups, -1).sum(axis=1)
        # Inverting a group complements its per-byte distances, so the
        # inverted distance is group_bits minus the plain distance.
        dist_inv = self.group_bits - dist_plain

        cost_plain = dist_plain + (old_flip_bits == 1)
        cost_inv = dist_inv + (old_flip_bits == 0)
        use_inverted = cost_inv < cost_plain

        new_flip_bits = use_inverted.astype(np.uint8)
        group_mask = np.repeat(use_inverted, self.group_bytes)
        new_stored = np.where(group_mask, inv_arr, tgt_arr)
        return new_stored, new_flip_bits

    def encode(
        self,
        old_stored: bytes,
        old_flip_bits: np.ndarray,
        target: bytes,
    ) -> tuple[bytes, np.ndarray]:
        """Choose the cheapest stored representation of ``target``.

        Byte-string front end over :meth:`encode_array`; returns the new
        stored bytes and the new flip-bit vector.
        """
        self._check(old_stored, old_flip_bits, target)
        stored, flip_bits = self.encode_array(
            np.frombuffer(old_stored, dtype=np.uint8),
            old_flip_bits,
            np.frombuffer(target, dtype=np.uint8),
        )
        return bitops.to_bytes(stored), flip_bits

    def decode_array(
        self, arr: np.ndarray, flip_bits: np.ndarray
    ) -> np.ndarray:
        """Array-native :meth:`decode`."""
        group_mask = np.repeat(flip_bits.astype(bool), self.group_bytes)
        return np.where(group_mask, ~arr, arr)

    def decode(self, stored: bytes, flip_bits: np.ndarray) -> bytes:
        """Recover the logical line from its stored representation."""
        self._check(stored, flip_bits, stored)
        return bitops.to_bytes(
            self.decode_array(np.frombuffer(stored, dtype=np.uint8), flip_bits)
        )

    def fresh_flip_bits(self) -> np.ndarray:
        return make_meta(self.n_groups)

    def _check(self, stored: bytes, flip_bits: np.ndarray, target: bytes) -> None:
        if len(stored) != self.line_bytes or len(target) != self.line_bytes:
            raise ValueError(
                f"line must be {self.line_bytes} bytes, got "
                f"{len(stored)}/{len(target)}"
            )
        if flip_bits.size != self.n_groups:
            raise ValueError(
                f"expected {self.n_groups} flip bits, got {flip_bits.size}"
            )


class PlainFNW(WriteScheme):
    """Unencrypted memory with Flip-N-Write (paper's "NoEncr FNW")."""

    name = "noencr-fnw"

    config_fields = {
        "line_bytes": "line_bytes",
        "fnw_group_bits": "group_bits",
    }
    requires_pads = False

    def __init__(self, line_bytes: int = 64, group_bits: int = 16) -> None:
        super().__init__(line_bytes)
        self.codec = FnwCodec(line_bytes, group_bits)

    @property
    def metadata_bits_per_line(self) -> int:
        return self.codec.n_groups

    def _install(self, address: int, plaintext: bytes) -> StoredLine:
        return StoredLine(plaintext, self.codec.fresh_flip_bits())

    def _write(self, address: int, plaintext: bytes) -> WriteOutcome:
        old = self._lines[address]
        stored, flip_bits = self.codec.encode_array(
            old.arr, old.meta, bitops.as_array(plaintext)
        )
        new = StoredLine(stored, flip_bits, old.counter + 1)
        self._lines[address] = new
        return self._outcome(address, old, new)

    def read(self, address: int) -> bytes:
        line = self._lines[address]
        return bitops.to_bytes(self.codec.decode_array(line.arr, line.meta))


class EncryptedFNW(WriteScheme):
    """Counter-mode encrypted memory with FNW on the ciphertext.

    The paper's "Encr FNW" configuration: every write re-encrypts the whole
    line with a fresh counter (avalanche makes the new ciphertext ~50%
    different), then FNW picks plain/inverted per group.  Expected flips per
    16-bit group against a random target: ``E[min(d, 16-d)] + E[flip-bit
    flip]`` which lands near the paper's 43%.
    """

    name = "encr-fnw"

    config_fields = {
        "line_bytes": "line_bytes",
        "fnw_group_bits": "group_bits",
    }

    def __init__(
        self,
        pads: PadSource,
        line_bytes: int = 64,
        group_bits: int = 16,
    ) -> None:
        super().__init__(line_bytes)
        self.pads = pads
        self.codec = FnwCodec(line_bytes, group_bits)

    @property
    def metadata_bits_per_line(self) -> int:
        return self.codec.n_groups

    def _pad(self, address: int, counter: int) -> np.ndarray:
        return self.pads.line_pad_array(address, counter, self.line_bytes)

    def _install(self, address: int, plaintext: bytes) -> StoredLine:
        ciphertext = bitops.as_array(plaintext) ^ self._pad(address, 0)
        return StoredLine(ciphertext, self.codec.fresh_flip_bits(), 0)

    def _write(self, address: int, plaintext: bytes) -> WriteOutcome:
        old = self._lines[address]
        counter = old.counter + 1
        ciphertext = bitops.as_array(plaintext) ^ self._pad(address, counter)
        stored, flip_bits = self.codec.encode_array(
            old.arr, old.meta, ciphertext
        )
        new = StoredLine(stored, flip_bits, counter)
        self._lines[address] = new
        return self._outcome(
            address, old, new, full_line_reencrypted=True, mode="fnw"
        )

    def read(self, address: int) -> bytes:
        line = self._lines[address]
        ciphertext = self.codec.decode_array(line.arr, line.meta)
        return bitops.to_bytes(ciphertext ^ self._pad(address, line.counter))
