"""Write schemes: baselines, DEUCE, and its combinations.

Every class here implements :class:`repro.schemes.base.WriteScheme`;
:data:`SCHEME_REGISTRY` maps table names to classes, and every
instantiation — ``build_scheme(config)``, :func:`make_scheme`, service
payloads — funnels through each class's ``from_config`` classmethod.
"""

from __future__ import annotations

from types import SimpleNamespace

from repro.crypto.pads import PadSource
from repro.schemes.base import WriteOutcome, WriteScheme
from repro.schemes.ble import BlockLevelEncryption
from repro.schemes.ble_deuce import BleDeuce
from repro.schemes.counter_mode import EncryptedDCW
from repro.schemes.dcw import PlainDCW
from repro.schemes.deuce import Deuce
from repro.schemes.deuce_fnw import DeuceFnw
from repro.schemes.dyndeuce import DynDeuce
from repro.schemes.fnw import EncryptedFNW, FnwCodec, PlainFNW
from repro.schemes.invmm import INvmm

#: Name -> class registry behind ``build_scheme`` and :func:`make_scheme`,
#: in presentation order.
SCHEME_REGISTRY: dict[str, type[WriteScheme]] = {
    cls.name: cls
    for cls in (
        PlainDCW,
        PlainFNW,
        EncryptedDCW,
        EncryptedFNW,
        Deuce,
        DynDeuce,
        DeuceFnw,
        BlockLevelEncryption,
        BleDeuce,
        INvmm,
    )
}

#: Scheme names accepted by :func:`make_scheme`, in presentation order.
SCHEME_NAMES = tuple(SCHEME_REGISTRY)

#: Schemes that need a pad source (i.e. that encrypt).
ENCRYPTED_SCHEMES = frozenset(
    name for name, cls in SCHEME_REGISTRY.items() if cls.requires_pads
)


def make_scheme(
    name: str,
    pads: PadSource | None = None,
    line_bytes: int = 64,
    word_bytes: int = 2,
    epoch_interval: int = 32,
    fnw_group_bits: int = 16,
) -> WriteScheme:
    """Instantiate a write scheme by its table name.

    Parameters mirror the paper's defaults: 64-byte lines, 2-byte DEUCE
    words, epoch interval 32, 16-bit FNW groups.  Thin front end over
    :data:`SCHEME_REGISTRY`: the keywords are packed into an ad-hoc config
    and handed to the class's ``from_config``, so name-based and
    config-driven construction share one code path.
    """
    cls = SCHEME_REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown scheme: {name!r} (choose from {SCHEME_NAMES})"
        )
    params = SimpleNamespace(
        line_bytes=line_bytes,
        word_bytes=word_bytes,
        epoch_interval=epoch_interval,
        fnw_group_bits=fnw_group_bits,
    )
    return cls.from_config(params, pads=pads)


__all__ = [
    "ENCRYPTED_SCHEMES",
    "SCHEME_NAMES",
    "SCHEME_REGISTRY",
    "BleDeuce",
    "BlockLevelEncryption",
    "Deuce",
    "DeuceFnw",
    "DynDeuce",
    "EncryptedDCW",
    "EncryptedFNW",
    "FnwCodec",
    "INvmm",
    "PlainDCW",
    "PlainFNW",
    "WriteOutcome",
    "WriteScheme",
    "make_scheme",
]
