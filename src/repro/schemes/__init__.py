"""Write schemes: baselines, DEUCE, and its combinations.

Every class here implements :class:`repro.schemes.base.WriteScheme`; the
registry in :func:`make_scheme` is what simulation configs and the CLI use
to instantiate schemes by name.
"""

from __future__ import annotations

from repro.crypto.pads import PadSource
from repro.schemes.base import WriteOutcome, WriteScheme
from repro.schemes.ble import BlockLevelEncryption
from repro.schemes.ble_deuce import BleDeuce
from repro.schemes.counter_mode import EncryptedDCW
from repro.schemes.dcw import PlainDCW
from repro.schemes.deuce import Deuce
from repro.schemes.deuce_fnw import DeuceFnw
from repro.schemes.dyndeuce import DynDeuce
from repro.schemes.fnw import EncryptedFNW, FnwCodec, PlainFNW
from repro.schemes.invmm import INvmm

#: Scheme names accepted by :func:`make_scheme`, in presentation order.
SCHEME_NAMES = (
    "noencr-dcw",
    "noencr-fnw",
    "encr-dcw",
    "encr-fnw",
    "deuce",
    "dyndeuce",
    "deuce+fnw",
    "ble",
    "ble+deuce",
    "invmm",
)

#: Schemes that need a pad source (i.e. that encrypt).
ENCRYPTED_SCHEMES = frozenset(
    name for name in SCHEME_NAMES if name not in ("noencr-dcw", "noencr-fnw")
)


def make_scheme(
    name: str,
    pads: PadSource | None = None,
    line_bytes: int = 64,
    word_bytes: int = 2,
    epoch_interval: int = 32,
    fnw_group_bits: int = 16,
) -> WriteScheme:
    """Instantiate a write scheme by its table name.

    Parameters mirror the paper's defaults: 64-byte lines, 2-byte DEUCE
    words, epoch interval 32, 16-bit FNW groups.
    """
    if name in ENCRYPTED_SCHEMES and pads is None:
        raise ValueError(f"scheme {name!r} requires a pad source")
    if name == "noencr-dcw":
        return PlainDCW(line_bytes)
    if name == "noencr-fnw":
        return PlainFNW(line_bytes, fnw_group_bits)
    if name == "encr-dcw":
        return EncryptedDCW(pads, line_bytes)
    if name == "encr-fnw":
        return EncryptedFNW(pads, line_bytes, fnw_group_bits)
    if name == "deuce":
        return Deuce(pads, line_bytes, word_bytes, epoch_interval)
    if name == "dyndeuce":
        return DynDeuce(pads, line_bytes, word_bytes, epoch_interval)
    if name == "deuce+fnw":
        return DeuceFnw(
            pads, line_bytes, word_bytes, epoch_interval, fnw_group_bits
        )
    if name == "ble":
        return BlockLevelEncryption(pads, line_bytes)
    if name == "ble+deuce":
        return BleDeuce(pads, line_bytes, word_bytes, epoch_interval)
    if name == "invmm":
        return INvmm(pads, line_bytes)
    raise ValueError(f"unknown scheme: {name!r} (choose from {SCHEME_NAMES})")


__all__ = [
    "ENCRYPTED_SCHEMES",
    "SCHEME_NAMES",
    "BleDeuce",
    "BlockLevelEncryption",
    "Deuce",
    "DeuceFnw",
    "DynDeuce",
    "EncryptedDCW",
    "EncryptedFNW",
    "FnwCodec",
    "INvmm",
    "PlainDCW",
    "PlainFNW",
    "WriteOutcome",
    "WriteScheme",
    "make_scheme",
]
