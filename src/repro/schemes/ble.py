"""Block-Level Encryption (BLE) [Kong & Zhou, DSN'10] — section 7.1.

BLE provisions one counter per 16-byte AES block (four per 64-byte line) and
re-encrypts only the blocks whose content changed, incrementing just those
blocks' counters.  It reduces the encrypted write overhead from 50% to ~33%
but still rewrites a full 16-byte block when a single bit in it changes —
the coarseness DEUCE's 2-byte tracking removes.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.pads import PAD_BLOCK_BYTES, PadSource
from repro.memory import bitops
from repro.memory.line import StoredLine, make_meta
from repro.schemes.base import WriteOutcome, WriteScheme


class BlockLevelEncryption(WriteScheme):
    """Counter-mode encryption with per-AES-block counters.

    Per-block counters are kept in ``self._block_counters``; the
    ``StoredLine.counter`` field mirrors the number of writebacks for
    diagnostics.  Counter bits are not charged to the figure of merit (the
    paper charges neither BLE's nor the baseline's counters).
    """

    name = "ble"

    def __init__(self, pads: PadSource, line_bytes: int = 64) -> None:
        super().__init__(line_bytes)
        if line_bytes % PAD_BLOCK_BYTES != 0:
            raise ValueError(
                f"line_bytes={line_bytes} is not a whole number of "
                f"{PAD_BLOCK_BYTES}-byte AES blocks"
            )
        self.pads = pads
        self.block_bytes = PAD_BLOCK_BYTES
        self.n_blocks = line_bytes // self.block_bytes
        self._block_counters: dict[int, list[int]] = {}

    @property
    def metadata_bits_per_line(self) -> int:
        return 0  # counters excluded, as for the line-counter baseline

    def block_counters(self, address: int) -> list[int]:
        """The per-block counters of a line (read-only copy)."""
        return list(self._block_counters[address])

    def _block_pad(self, address: int, counter: int, block: int) -> np.ndarray:
        return np.frombuffer(
            self.pads.pad_block(address, counter, block), dtype=np.uint8
        )

    def _line_pad(self, address: int, counters: list[int]) -> np.ndarray:
        """Concatenated per-block pads under each block's own counter."""
        pad = np.empty(self.line_bytes, dtype=np.uint8)
        for b in range(self.n_blocks):
            lo = b * self.block_bytes
            pad[lo: lo + self.block_bytes] = self._block_pad(
                address, counters[b], b
            )
        return pad

    def _extra_state(self) -> dict[str, object]:
        n = len(self._block_counters)
        addresses = np.empty(n, dtype=np.int64)
        counters = np.empty((n, self.n_blocks), dtype=np.int64)
        for i, (addr, blocks) in enumerate(self._block_counters.items()):
            addresses[i] = addr
            counters[i] = blocks
        return {"block_addresses": addresses, "block_counters": counters}

    def _load_extra_state(self, extra: dict[str, object]) -> None:
        addresses = np.asarray(extra["block_addresses"], dtype=np.int64)
        counters = np.asarray(extra["block_counters"], dtype=np.int64)
        self._block_counters = {
            int(addresses[i]): [int(c) for c in counters[i]]
            for i in range(addresses.size)
        }

    def _install(self, address: int, plaintext: bytes) -> StoredLine:
        counters = [0] * self.n_blocks
        self._block_counters[address] = counters
        stored = bitops.as_array(plaintext) ^ self._line_pad(address, counters)
        return StoredLine(stored, make_meta(0), 0)

    def _read_array(self, address: int) -> np.ndarray:
        line = self._lines[address]
        counters = self._block_counters[address]
        return line.arr ^ self._line_pad(address, counters)

    def read(self, address: int) -> bytes:
        return bitops.to_bytes(self._read_array(address))

    def _write(self, address: int, plaintext: bytes) -> WriteOutcome:
        old = self._lines[address]
        old_plain = self._read_array(address)
        new_plain = bitops.as_array(plaintext)
        counters = self._block_counters[address]

        changed = np.nonzero(
            (old_plain != new_plain)
            .reshape(self.n_blocks, self.block_bytes)
            .any(axis=1)
        )[0]
        stored = old.arr.copy()
        for b in changed:
            counters[b] += 1
            lo = b * self.block_bytes
            hi = lo + self.block_bytes
            stored[lo:hi] = new_plain[lo:hi] ^ self._block_pad(
                address, counters[b], b
            )

        new = StoredLine(stored, make_meta(0), old.counter + 1)
        self._lines[address] = new
        return self._outcome(
            address,
            old,
            new,
            words_reencrypted=int(changed.size),
            full_line_reencrypted=(changed.size == self.n_blocks),
            mode="ble",
        )
