"""Batched write outcomes and the shared chunk vectorization machinery.

The chunked write path hands a scheme a whole slice of the trace at once —
``(addresses, data)`` arrays covering up to ``chunk_size`` consecutive
writebacks — and gets back one :class:`BatchOutcome` describing every write's
cell-level effect.  The contract mirrors :class:`~repro.schemes.base
.WriteOutcome` exactly, just in structure-of-arrays form, so the runner can
fold a chunk into the aggregates with scatter-adds instead of per-write
Python.

The helpers here implement the address-group plumbing every batchable scheme
shares: stable-sort the chunk by address so each line's writes become one
contiguous run, carry the per-line stored image through the run with
shift-by-one previous-row gathers, and diff consecutive stored images into
flip counts and bit positions in one wide pass.  Rows of a
:class:`BatchOutcome` are in the scheme's internal (sorted) order — every
consumer aggregates over the chunk, so row order never affects results.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.memory import bitops

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_BOOL = np.zeros(0, dtype=bool)

# Ragged lookup tables for set-bit extraction: for each byte value, the
# MSB-first indices of its set bits (matching ``np.unpackbits`` order),
# concatenated, with per-value offsets and counts.  Extracting flipped
# positions through these tables touches only the nonzero diff bytes
# instead of unpacking the whole chunk to bits.
_BITS_TABLE = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1)
_BIT_COUNTS = _BITS_TABLE.sum(axis=1).astype(np.int64)
_BIT_OFFSETS = np.zeros(257, dtype=np.int64)
np.cumsum(_BIT_COUNTS, out=_BIT_OFFSETS[1:])
_BIT_INDICES = np.nonzero(_BITS_TABLE)[1].astype(np.int64)
del _BITS_TABLE


def bit_positions(diff: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Rows and bit positions of every set bit in a ``(m, n)`` byte diff.

    Identical output (values and order) to
    ``np.nonzero(np.unpackbits(diff, axis=1))`` but sparse: only the nonzero
    bytes are expanded, via the ragged per-byte-value tables above.  On
    realistic write chunks (a few flipped words per line) this is several
    times faster than unpacking every byte.
    """
    flat = np.flatnonzero(diff)
    if flat.size == 0:
        return _EMPTY_I64, _EMPTY_I64
    nz = diff.reshape(-1)[flat]
    counts = _BIT_COUNTS[nz]
    total = int(counts.sum())
    starts = np.zeros(flat.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    bit = _BIT_INDICES[np.repeat(_BIT_OFFSETS[nz], counts) + within]
    n_cols = diff.shape[1]
    rows = np.repeat(flat // n_cols, counts)
    positions = np.repeat(flat % n_cols, counts) * 8 + bit
    return rows, positions


@dataclass(slots=True)
class BatchOutcome:
    """Structure-of-arrays form of ``m`` consecutive write outcomes.

    Attributes
    ----------
    addresses:
        ``(m,)`` line address per row (rows may be address-sorted).
    data_flips / meta_flips / set_flips / reset_flips / words_reencrypted:
        ``(m,)`` per-write counts, exactly the scalar outcome fields.
    full_line_reencrypted / epoch_reset / mode_switched:
        ``(m,)`` boolean flags per write.
    data_diff / meta_diff:
        The packed per-write diffs: ``data_diff`` is the ``(m, line_bytes)``
        XOR of consecutive stored images, ``meta_diff`` the ``(m, n_words)``
        boolean metadata diff (or ``None`` for schemes without metadata).
        The wear and slot accumulators consume these directly — flat bit
        positions are only materialized on demand.
    data_positions / data_rows:
        Flat flipped data-bit positions and the row each belongs to
        (lazily expanded from ``data_diff`` on first access).
    meta_positions / meta_rows:
        Same for metadata bits (positions relative to the metadata region).
    mode_counts:
        Contribution to ``RunResult.mode_histogram`` (empty-mode writes
        excluded, matching the serial loop).
    """

    addresses: np.ndarray
    data_flips: np.ndarray
    meta_flips: np.ndarray
    set_flips: np.ndarray
    reset_flips: np.ndarray
    words_reencrypted: np.ndarray
    full_line_reencrypted: np.ndarray
    epoch_reset: np.ndarray
    mode_switched: np.ndarray
    data_diff: np.ndarray | None = None
    meta_diff: np.ndarray | None = None
    _data_positions: np.ndarray | None = field(default=None, repr=False)
    _data_rows: np.ndarray | None = field(default=None, repr=False)
    _meta_positions: np.ndarray | None = field(default=None, repr=False)
    _meta_rows: np.ndarray | None = field(default=None, repr=False)
    mode_counts: dict[str, int] = field(default_factory=dict)

    @property
    def n_writes(self) -> int:
        return int(self.addresses.shape[0])

    @property
    def data_positions(self) -> np.ndarray:
        if self._data_positions is None:
            self._expand_data()
        return self._data_positions

    @property
    def data_rows(self) -> np.ndarray:
        if self._data_rows is None:
            self._expand_data()
        return self._data_rows

    @property
    def meta_positions(self) -> np.ndarray:
        if self._meta_positions is None:
            self._expand_meta()
        return self._meta_positions

    @property
    def meta_rows(self) -> np.ndarray:
        if self._meta_rows is None:
            self._expand_meta()
        return self._meta_rows

    def _expand_data(self) -> None:
        if self.data_diff is None:
            self._data_rows = self._data_positions = _EMPTY_I64
        else:
            rows, positions = bit_positions(self.data_diff)
            self._data_rows, self._data_positions = rows, positions

    def _expand_meta(self) -> None:
        if self.meta_diff is None or self.meta_diff.size == 0:
            self._meta_rows = self._meta_positions = _EMPTY_I64
        else:
            rows, positions = np.nonzero(self.meta_diff)
            self._meta_rows = rows.astype(np.int64, copy=False)
            self._meta_positions = positions.astype(np.int64, copy=False)

    @classmethod
    def from_outcomes(cls, outcomes: Sequence) -> "BatchOutcome":
        """Pack scalar :class:`WriteOutcome` objects into one batch.

        The generic ``write_batch`` fallback and the property tests use
        this; the vectorized schemes build their batches directly.
        """
        m = len(outcomes)
        addresses = np.fromiter(
            (o.address for o in outcomes), dtype=np.int64, count=m
        )
        data_rows = np.concatenate(
            [np.full(o.flipped_data_positions.size, i, dtype=np.int64)
             for i, o in enumerate(outcomes)]
        ) if m else _EMPTY_I64
        meta_rows = np.concatenate(
            [np.full(o.flipped_meta_positions.size, i, dtype=np.int64)
             for i, o in enumerate(outcomes)]
        ) if m else _EMPTY_I64
        modes = Counter(o.mode for o in outcomes if o.mode)
        return cls(
            addresses=addresses,
            data_flips=np.fromiter(
                (o.data_flips for o in outcomes), dtype=np.int64, count=m
            ),
            meta_flips=np.fromiter(
                (o.metadata_flips for o in outcomes), dtype=np.int64, count=m
            ),
            set_flips=np.fromiter(
                (o.set_flips for o in outcomes), dtype=np.int64, count=m
            ),
            reset_flips=np.fromiter(
                (o.reset_flips for o in outcomes), dtype=np.int64, count=m
            ),
            words_reencrypted=np.fromiter(
                (o.words_reencrypted for o in outcomes), dtype=np.int64,
                count=m,
            ),
            full_line_reencrypted=np.fromiter(
                (o.full_line_reencrypted for o in outcomes), dtype=bool,
                count=m,
            ),
            epoch_reset=np.fromiter(
                (o.epoch_reset for o in outcomes), dtype=bool, count=m
            ),
            mode_switched=np.fromiter(
                (o.mode_switched for o in outcomes), dtype=bool, count=m
            ),
            _data_positions=np.concatenate(
                [o.flipped_data_positions for o in outcomes]
            ).astype(np.int64, copy=False) if m else _EMPTY_I64,
            _data_rows=data_rows,
            _meta_positions=np.concatenate(
                [o.flipped_meta_positions for o in outcomes]
            ).astype(np.int64, copy=False) if m else _EMPTY_I64,
            _meta_rows=meta_rows,
            mode_counts=dict(modes),
        )


def empty_batch() -> BatchOutcome:
    """A zero-write batch (chunked loop edge cases)."""
    return BatchOutcome(
        addresses=_EMPTY_I64,
        data_flips=_EMPTY_I64,
        meta_flips=_EMPTY_I64,
        set_flips=_EMPTY_I64,
        reset_flips=_EMPTY_I64,
        words_reencrypted=_EMPTY_I64,
        full_line_reencrypted=_EMPTY_BOOL,
        epoch_reset=_EMPTY_BOOL,
        mode_switched=_EMPTY_BOOL,
    )


@dataclass(slots=True)
class AddressGroups:
    """A chunk stable-sorted by address, with per-line run bookkeeping.

    Attributes
    ----------
    order:
        Permutation that sorts the chunk by address (stable, so each line's
        writes keep their trace order inside the run).
    addresses / data:
        The sorted ``(m,)`` addresses and ``(m, line_bytes)`` payloads.
    starts:
        Row index where each address run begins.
    group_id:
        ``(m,)`` run index per row.
    rank:
        ``(m,)`` position of the row inside its run (0-based).
    unique_addresses:
        One address per run, in sorted order.
    """

    order: np.ndarray
    addresses: np.ndarray
    data: np.ndarray
    starts: np.ndarray
    group_id: np.ndarray
    rank: np.ndarray
    unique_addresses: np.ndarray

    @property
    def last_rows(self) -> np.ndarray:
        """Row index of each run's final write (the state to commit)."""
        m = self.addresses.shape[0]
        return np.concatenate([self.starts[1:] - 1, [m - 1]])


def group_by_address(addresses: np.ndarray, data: np.ndarray) -> AddressGroups:
    """Stable-sort a chunk by address into contiguous per-line runs."""
    addresses = np.asarray(addresses, dtype=np.int64)
    data = np.ascontiguousarray(data, dtype=np.uint8)
    m = addresses.shape[0]
    order = np.argsort(addresses, kind="stable")
    s_addr = addresses[order]
    starts_mask = np.empty(m, dtype=bool)
    starts_mask[0] = True
    np.not_equal(s_addr[1:], s_addr[:-1], out=starts_mask[1:])
    starts = np.flatnonzero(starts_mask)
    group_id = np.cumsum(starts_mask) - 1
    rank = np.arange(m, dtype=np.int64) - starts[group_id]
    return AddressGroups(
        order=order,
        addresses=s_addr,
        data=np.ascontiguousarray(data[order]),
        starts=starts,
        group_id=group_id,
        rank=rank,
        unique_addresses=s_addr[starts],
    )


def previous_rows(
    current: np.ndarray, starts: np.ndarray, firsts: np.ndarray
) -> np.ndarray:
    """Shift rows down by one within each address run.

    Row ``j`` receives row ``j - 1`` of ``current``; the first row of each
    run receives the corresponding row of ``firsts`` (the pre-chunk state).
    This is how the chunk carries "previous stored image" / "previous
    plaintext" without a Python loop.
    """
    prev = np.empty_like(current)
    prev[1:] = current[:-1]
    prev[starts] = firsts
    return prev


def diff_stored_rows(
    prev_stored: np.ndarray,
    stored: np.ndarray,
    prev_meta: np.ndarray | None,
    meta: np.ndarray | None,
) -> dict[str, np.ndarray]:
    """Diff consecutive stored images into per-write flips and diffs.

    The batched form of ``WriteScheme._outcome``: XOR the whole chunk at
    once and popcount per row.  The packed diff matrices ride along in the
    :class:`BatchOutcome` for the wear/slot accumulators; flat bit positions
    are only expanded if something asks for them.
    """
    diff = prev_stored ^ stored
    if diff.shape[1] % 8 == 0 and diff.flags.c_contiguous:
        # Popcount eight bytes at a time through a uint64 view.
        data_flips = np.bitwise_count(diff.view(np.uint64)).sum(
            axis=1, dtype=np.int64
        )
        set_flips = np.bitwise_count(
            np.ascontiguousarray(diff & stored).view(np.uint64)
        ).sum(axis=1, dtype=np.int64)
    else:
        data_flips = bitops.byte_popcounts(diff).sum(axis=1, dtype=np.int64)
        set_flips = bitops.byte_popcounts(diff & stored).sum(
            axis=1, dtype=np.int64
        )
    if meta is None or meta.size == 0:
        m = stored.shape[0]
        meta_flips = np.zeros(m, dtype=np.int64)
        mdiff = None
    else:
        mdiff = prev_meta != meta
        meta_flips = mdiff.sum(axis=1, dtype=np.int64)
    return {
        "data_flips": data_flips,
        "set_flips": set_flips,
        "reset_flips": data_flips - set_flips,
        "meta_flips": meta_flips,
        "data_diff": diff,
        "meta_diff": mdiff,
    }
