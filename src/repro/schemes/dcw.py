"""Data Comparison Write (DCW) on unencrypted memory.

DCW [Zhou et al., ISCA'09] is the paper's unencrypted baseline: the memory
reads the line before writing and only programs cells whose value changes.
In this codebase DCW is implicit in how :class:`~repro.schemes.base
.WriteScheme` counts flips (old vs new stored image), so the scheme itself is
the simplest possible one — store the plaintext as-is.
"""

from __future__ import annotations

from repro.memory.line import StoredLine, make_meta
from repro.schemes.base import WriteOutcome, WriteScheme


class PlainDCW(WriteScheme):
    """Unencrypted memory with data-comparison writes (paper's "NoEncr DCW")."""

    name = "noencr-dcw"

    requires_pads = False

    @property
    def metadata_bits_per_line(self) -> int:
        return 0

    def _install(self, address: int, plaintext: bytes) -> StoredLine:
        return StoredLine(plaintext, make_meta(0))

    def _write(self, address: int, plaintext: bytes) -> WriteOutcome:
        old = self._lines[address]
        new = StoredLine(plaintext, make_meta(0), old.counter + 1)
        self._lines[address] = new
        return self._outcome(address, old, new)

    def read(self, address: int) -> bytes:
        return self._lines[address].data
