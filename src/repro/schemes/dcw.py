"""Data Comparison Write (DCW) on unencrypted memory.

DCW [Zhou et al., ISCA'09] is the paper's unencrypted baseline: the memory
reads the line before writing and only programs cells whose value changes.
In this codebase DCW is implicit in how :class:`~repro.schemes.base
.WriteScheme` counts flips (old vs new stored image), so the scheme itself is
the simplest possible one — store the plaintext as-is.
"""

from __future__ import annotations

import numpy as np

from repro.memory.line import StoredLine, make_meta
from repro.schemes.base import WriteOutcome, WriteScheme
from repro.schemes.batch import (
    BatchOutcome,
    diff_stored_rows,
    empty_batch,
    group_by_address,
    previous_rows,
)


class PlainDCW(WriteScheme):
    """Unencrypted memory with data-comparison writes (paper's "NoEncr DCW")."""

    name = "noencr-dcw"

    requires_pads = False

    supports_write_batch = True

    @property
    def metadata_bits_per_line(self) -> int:
        return 0

    def _install(self, address: int, plaintext: bytes) -> StoredLine:
        return StoredLine(plaintext, make_meta(0))

    def install_batch(self, addresses, data) -> None:
        """Bulk plaintext placement (no pads to fetch, just line images)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        stored = np.array(data, dtype=np.uint8)
        if stored.ndim != 2 or stored.shape[1] != self.line_bytes:
            raise ValueError(
                f"lines must be (n, {self.line_bytes}), got {stored.shape}"
            )
        stored.setflags(write=False)
        metas = np.zeros((addresses.size, 0), dtype=np.uint8)
        metas.setflags(write=False)
        from_parts = StoredLine.from_parts
        lines = self._lines
        for addr, s_row, m_row in zip(addresses.tolist(), stored, metas):
            lines[addr] = from_parts(s_row, m_row, 0)

    def _write(self, address: int, plaintext: bytes) -> WriteOutcome:
        old = self._lines[address]
        new = StoredLine(plaintext, make_meta(0), old.counter + 1)
        self._lines[address] = new
        return self._outcome(address, old, new)

    def read(self, address: int) -> bytes:
        return self._lines[address].data

    def write_batch(self, addresses, data) -> BatchOutcome:
        """Vectorized plaintext stores: the chunk diff IS the flip count."""
        m = len(addresses)
        if m == 0:
            return empty_batch()
        groups = group_by_address(addresses, data)
        starts = groups.starts
        lines_get = self._lines.get
        ctr_list: list[int] = []
        stored_rows: list[np.ndarray] = []
        for addr in groups.unique_addresses.tolist():
            line = lines_get(addr)
            if line is None:
                raise KeyError(
                    f"line {addr:#x} was never installed; call install() first"
                )
            ctr_list.append(line.counter)
            stored_rows.append(line.arr)
        base_counters = np.asarray(ctr_list, dtype=np.int64)
        old_stored = np.concatenate(stored_rows).reshape(
            starts.size, self.line_bytes
        )
        counters = base_counters[groups.group_id] + groups.rank + 1
        stored = groups.data
        prev_stored = previous_rows(stored, starts, old_stored)
        diffs = diff_stored_rows(prev_stored, stored, None, None)
        # Bulk commit: one fancy-index copies every final row; lines hold
        # views into the small per-group buffer, not the chunk arrays.
        last_rows = groups.last_rows
        final_stored = stored[last_rows]
        final_stored.setflags(write=False)
        final_counters = counters[last_rows].tolist()
        metas = np.zeros((last_rows.size, 0), dtype=np.uint8)
        metas.setflags(write=False)
        from_parts = StoredLine.from_parts
        lines = self._lines
        for addr, s_row, m_row, ctr in zip(
            groups.unique_addresses.tolist(), final_stored, metas, final_counters
        ):
            lines[addr] = from_parts(s_row, m_row, ctr)
        return BatchOutcome(
            addresses=groups.addresses,
            words_reencrypted=np.zeros(m, dtype=np.int64),
            full_line_reencrypted=np.zeros(m, dtype=bool),
            epoch_reset=np.zeros(m, dtype=bool),
            mode_switched=np.zeros(m, dtype=bool),
            **diffs,
        )
