"""Cryptographic substrate: AES, counter-mode pads, line encryption."""

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.ctr import CounterModeEngine, mix_pads, xor_bytes
from repro.crypto.pads import (
    AesPadSource,
    Blake2PadSource,
    CachingPadSource,
    PadSource,
    make_pad_source,
)
from repro.crypto.rekey import VersionedPadSource

__all__ = [
    "AES",
    "BLOCK_SIZE",
    "AesPadSource",
    "Blake2PadSource",
    "CachingPadSource",
    "CounterModeEngine",
    "PadSource",
    "VersionedPadSource",
    "make_pad_source",
    "mix_pads",
    "xor_bytes",
]
