"""Pure-Python AES block cipher (FIPS-197).

DEUCE's counter-mode encryption (paper section 2.4) uses an AES engine to turn
``(key, line address, counter)`` into a one-time pad.  This module provides
that engine from scratch: key expansion and the forward/inverse cipher for
AES-128, AES-192, and AES-256, operating on 16-byte blocks.

The implementation favours clarity over raw speed.  It precomputes the
standard S-box and the xtime (GF(2^8) doubling) table once at import.  For
simulation sweeps that need millions of pads, prefer
:class:`repro.crypto.pads.Blake2PadSource`, which is a drop-in surrogate
validated to have the same avalanche behaviour (see DESIGN.md).

Example
-------
>>> key = bytes(range(16))
>>> cipher = AES(key)
>>> block = bytes(16)
>>> plain = cipher.decrypt_block(cipher.encrypt_block(block))
>>> plain == block
True
"""

from __future__ import annotations

import numpy as np

BLOCK_SIZE = 16
_NB = 4  # state columns, fixed by the standard

_KEY_ROUNDS = {16: 10, 24: 12, 32: 14}


def _build_sbox() -> tuple[bytes, bytes]:
    """Construct the AES S-box from first principles.

    The S-box is the multiplicative inverse in GF(2^8) followed by the
    standard affine transform.  Building it (rather than hard-coding 256
    opaque constants) keeps the implementation auditable; the unit tests
    additionally pin the table against the FIPS-197 values.
    """
    # Exp/log tables over GF(2^8) with generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 = x + 2x in GF(2^8)
        x ^= (x << 1) ^ (0x1B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # affine transform: s = inv ^ rot1 ^ rot2 ^ rot3 ^ rot4 ^ 0x63
        s = inv
        for shift in (1, 2, 3, 4):
            s ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox[value] = s ^ 0x63

    inv_sbox = [0] * 256
    for i, s in enumerate(sbox):
        inv_sbox[s] = i
    return bytes(sbox), bytes(inv_sbox)


SBOX, INV_SBOX = _build_sbox()

# xtime: multiplication by 2 in GF(2^8), table-driven.
XTIME = bytes(((v << 1) ^ 0x1B) & 0xFF if v & 0x80 else (v << 1) for v in range(256))


def _gf_mul(a: int, b: int) -> int:
    """Multiply two GF(2^8) elements (schoolbook, used by InvMixColumns)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = XTIME[a]
        b >>= 1
    return result


# Precomputed multiply-by-constant tables used by MixColumns / InvMixColumns.
MUL2 = XTIME
MUL3 = bytes(XTIME[v] ^ v for v in range(256))
MUL9 = bytes(_gf_mul(v, 9) for v in range(256))
MUL11 = bytes(_gf_mul(v, 11) for v in range(256))
MUL13 = bytes(_gf_mul(v, 13) for v in range(256))
MUL14 = bytes(_gf_mul(v, 14) for v in range(256))

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(XTIME[_RCON[-1]])

# Array views of the lookup tables for the batched cipher path.
_SBOX_NP = np.frombuffer(SBOX, dtype=np.uint8)
_MUL2_NP = np.frombuffer(MUL2, dtype=np.uint8)
_MUL3_NP = np.frombuffer(MUL3, dtype=np.uint8)

#: ShiftRows as a column gather: state[r, c] <- state[r, (c + r) % 4].
_SHIFT_COLS = (np.arange(4)[:, None] + np.arange(4)[None, :]) % 4
_SHIFT_ROWS = np.arange(4)[:, None]


class AES:
    """AES block cipher with a fixed key.

    Parameters
    ----------
    key:
        16, 24, or 32 bytes selecting AES-128/192/256.

    The round keys are expanded once in the constructor; ``encrypt_block`` and
    ``decrypt_block`` then operate on arbitrary 16-byte blocks.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in _KEY_ROUNDS:
            raise ValueError(
                f"AES key must be 16, 24, or 32 bytes, got {len(key)}"
            )
        self.key = bytes(key)
        self.rounds = _KEY_ROUNDS[len(key)]
        self._round_keys = self._expand_key(self.key)

    # -- key schedule -----------------------------------------------------

    def _expand_key(self, key: bytes) -> list[list[int]]:
        """FIPS-197 key expansion, returned as one flat word list per round."""
        nk = len(key) // 4
        words: list[list[int]] = [list(key[4 * i: 4 * i + 4]) for i in range(nk)]
        total_words = _NB * (self.rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        # Group into per-round 16-byte keys.
        round_keys = []
        for r in range(self.rounds + 1):
            rk: list[int] = []
            for w in words[4 * r: 4 * r + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    # -- forward cipher ---------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = [block[c * 4 + r] for r in range(4) for c in range(4)]
        state = self._add_round_key(state, 0)
        for rnd in range(1, self.rounds):
            state = [SBOX[b] for b in state]
            state = _shift_rows(state)
            state = _mix_columns(state)
            state = self._add_round_key(state, rnd)
        state = [SBOX[b] for b in state]
        state = _shift_rows(state)
        state = self._add_round_key(state, self.rounds)
        return bytes(state[r * 4 + c] for c in range(4) for r in range(4))

    def encrypt_blocks_array(self, blocks: np.ndarray) -> np.ndarray:
        """Encrypt ``(n, 16)`` blocks in one vectorized pass.

        Numpy formulation of :meth:`encrypt_block`: the per-round S-box
        substitution is a table gather over all blocks at once, ShiftRows a
        fixed column gather, and MixColumns the MUL2/MUL3 table form — so a
        whole chunk's CTR keystream is a handful of wide array operations
        instead of ``n`` Python block encryptions.  Bit-identical to the
        scalar path (the unit tests cross-check against FIPS-197 vectors).
        """
        blocks = np.ascontiguousarray(blocks, dtype=np.uint8)
        if blocks.ndim != 2 or blocks.shape[1] != BLOCK_SIZE:
            raise ValueError(
                f"blocks must be (n, {BLOCK_SIZE}) uint8, got {blocks.shape}"
            )
        # Input bytes are column-major: state[r, c] = block[c * 4 + r].
        state = blocks.reshape(-1, 4, 4).transpose(0, 2, 1).copy()
        rks = (
            np.array(self._round_keys, dtype=np.uint8)
            .reshape(-1, 4, 4)
            .transpose(0, 2, 1)
        )
        state ^= rks[0]
        for rnd in range(1, self.rounds):
            state = _SBOX_NP[state]
            state = state[:, _SHIFT_ROWS, _SHIFT_COLS]
            a0, a1, a2, a3 = (state[:, r, :] for r in range(4))
            state = np.stack(
                [
                    _MUL2_NP[a0] ^ _MUL3_NP[a1] ^ a2 ^ a3,
                    a0 ^ _MUL2_NP[a1] ^ _MUL3_NP[a2] ^ a3,
                    a0 ^ a1 ^ _MUL2_NP[a2] ^ _MUL3_NP[a3],
                    _MUL3_NP[a0] ^ a1 ^ a2 ^ _MUL2_NP[a3],
                ],
                axis=1,
            )
            state ^= rks[rnd]
        state = _SBOX_NP[state]
        state = state[:, _SHIFT_ROWS, _SHIFT_COLS]
        state ^= rks[self.rounds]
        return state.transpose(0, 2, 1).reshape(-1, BLOCK_SIZE)

    # -- inverse cipher ---------------------------------------------------

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = [block[c * 4 + r] for r in range(4) for c in range(4)]
        state = self._add_round_key(state, self.rounds)
        for rnd in range(self.rounds - 1, 0, -1):
            state = _inv_shift_rows(state)
            state = [INV_SBOX[b] for b in state]
            state = self._add_round_key(state, rnd)
            state = _inv_mix_columns(state)
        state = _inv_shift_rows(state)
        state = [INV_SBOX[b] for b in state]
        state = self._add_round_key(state, 0)
        return bytes(state[r * 4 + c] for c in range(4) for r in range(4))

    def _add_round_key(self, state: list[int], rnd: int) -> list[int]:
        rk = self._round_keys[rnd]
        # Round key bytes are column-major; state here is row-major.
        return [
            state[r * 4 + c] ^ rk[c * 4 + r]
            for r in range(4)
            for c in range(4)
        ]


def _shift_rows(state: list[int]) -> list[int]:
    out = list(state)
    for r in range(1, 4):
        row = state[r * 4: r * 4 + 4]
        out[r * 4: r * 4 + 4] = row[r:] + row[:r]
    return out


def _inv_shift_rows(state: list[int]) -> list[int]:
    out = list(state)
    for r in range(1, 4):
        row = state[r * 4: r * 4 + 4]
        out[r * 4: r * 4 + 4] = row[-r:] + row[:-r]
    return out


def _mix_columns(state: list[int]) -> list[int]:
    out = [0] * 16
    for c in range(4):
        a0, a1, a2, a3 = (state[r * 4 + c] for r in range(4))
        out[0 * 4 + c] = MUL2[a0] ^ MUL3[a1] ^ a2 ^ a3
        out[1 * 4 + c] = a0 ^ MUL2[a1] ^ MUL3[a2] ^ a3
        out[2 * 4 + c] = a0 ^ a1 ^ MUL2[a2] ^ MUL3[a3]
        out[3 * 4 + c] = MUL3[a0] ^ a1 ^ a2 ^ MUL2[a3]
    return out


def _inv_mix_columns(state: list[int]) -> list[int]:
    out = [0] * 16
    for c in range(4):
        a0, a1, a2, a3 = (state[r * 4 + c] for r in range(4))
        out[0 * 4 + c] = MUL14[a0] ^ MUL11[a1] ^ MUL13[a2] ^ MUL9[a3]
        out[1 * 4 + c] = MUL9[a0] ^ MUL14[a1] ^ MUL11[a2] ^ MUL13[a3]
        out[2 * 4 + c] = MUL13[a0] ^ MUL9[a1] ^ MUL14[a2] ^ MUL11[a3]
        out[3 * 4 + c] = MUL11[a0] ^ MUL13[a1] ^ MUL9[a2] ^ MUL14[a3]
    return out
