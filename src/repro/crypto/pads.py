"""One-time pad (OTP) sources for counter-mode memory encryption.

Counter-mode encryption (paper section 2.3-2.4) never feeds data through the
block cipher.  Instead the cipher turns ``(secret key, line address, line
counter)`` into a pseudorandom *pad*; the pad is XORed with the line for both
encryption and decryption.  Security rests on each (address, counter) pair
producing a pad exactly once.

This module defines the :class:`PadSource` interface and two implementations:

* :class:`AesPadSource` — the real thing: AES (from :mod:`repro.crypto.aes`)
  in counter mode, one 16-byte block per pad block, exactly as a hardware AES
  engine would generate it.
* :class:`Blake2PadSource` — a fast surrogate backed by ``hashlib.blake2b``
  (C implementation in the standard library).  It is a keyed PRF with the
  same avalanche property (each distinct input yields a pad that differs in
  ~50% of bits), which is the only statistical property the paper's write
  analysis depends on.  Sweeps over millions of writebacks use this source;
  functional tests use AES.

Both sources are deterministic for a given key, so traces are reproducible.

Besides the byte-string ``pad_block``/``line_pad`` interface, every source
offers :meth:`PadSource.line_pad_array`, which produces the whole line's pad
as one read-only ``np.uint8`` array — a single BLAKE2 call for 64-byte lines,
or all N AES blocks materialized in one pass — so the vectorized scheme write
paths never round-trip pads through ``bytes``.
"""

from __future__ import annotations

import hashlib
import struct
from collections import OrderedDict
from typing import Protocol

import numpy as np

from repro.crypto.aes import AES, BLOCK_SIZE

#: Pad block width.  AES fixes this at 16 bytes; the BLAKE2 surrogate honours
#: the same framing so the two sources are interchangeable.
PAD_BLOCK_BYTES = BLOCK_SIZE


def _freeze(arr: np.ndarray) -> np.ndarray:
    """Mark a pad array read-only (pads are shared and must never mutate)."""
    arr.setflags(write=False)
    return arr


class PadSource(Protocol):
    """Anything that can produce counter-mode pads.

    Implementations must be pure functions of ``(key, address, counter,
    block_index)`` — calling :meth:`pad_block` twice with the same arguments
    must return the same bytes, and any change to an argument should change
    roughly half the output bits (avalanche).
    """

    def pad_block(self, address: int, counter: int, block_index: int) -> bytes:
        """Return the 16-byte pad block for one AES block of a line."""
        ...

    def line_pad(self, address: int, counter: int, n_bytes: int) -> bytes:
        """Return a pad covering ``n_bytes`` (concatenated pad blocks)."""
        ...

    def line_pad_array(
        self, address: int, counter: int, n_bytes: int
    ) -> np.ndarray:
        """Return the ``n_bytes`` line pad as a read-only uint8 array."""
        ...


def _pack_tweak(address: int, counter: int, block_index: int) -> bytes:
    """Serialize the pad inputs into the cipher's 16-byte input block.

    Layout: 6-byte line address, 7-byte counter, 1-byte block index, 2 bytes
    of zero padding.  28-bit line counters (the paper's provisioning) fit with
    room to spare; we allow up to 56 bits so lifetime studies never wrap.
    """
    if address < 0 or address >= 1 << 48:
        raise ValueError(f"line address out of range: {address}")
    if counter < 0 or counter >= 1 << 56:
        raise ValueError(f"counter out of range: {counter}")
    if block_index < 0 or block_index >= 256:
        raise ValueError(f"block index out of range: {block_index}")
    return (
        address.to_bytes(6, "little")
        + counter.to_bytes(7, "little")
        + bytes([block_index])
        + b"\x00\x00"
    )


class _PadSourceBase:
    """Shared ``line_pad`` plumbing for concrete pad sources."""

    def pad_block(self, address: int, counter: int, block_index: int) -> bytes:
        raise NotImplementedError

    def line_pad(self, address: int, counter: int, n_bytes: int) -> bytes:
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        n_blocks = -(-n_bytes // PAD_BLOCK_BYTES)
        pad = b"".join(
            self.pad_block(address, counter, i) for i in range(n_blocks)
        )
        return pad[:n_bytes]

    def line_pad_array(
        self, address: int, counter: int, n_bytes: int
    ) -> np.ndarray:
        """Default array framing: one buffer view over the line pad bytes."""
        return _freeze(
            np.frombuffer(self.line_pad(address, counter, n_bytes), np.uint8)
        )


class AesPadSource(_PadSourceBase):
    """Counter-mode pads from a real AES engine.

    Parameters
    ----------
    key:
        AES key (16/24/32 bytes).  In hardware this is the processor-held
        secret; the memory side never sees it.
    """

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)
        self.key = bytes(key)

    def pad_block(self, address: int, counter: int, block_index: int) -> bytes:
        tweak = _pack_tweak(address, counter, block_index)
        return self._aes.encrypt_block(tweak)


class Blake2PadSource(_PadSourceBase):
    """Fast keyed-PRF pads for large simulation sweeps.

    Uses ``blake2b`` in keyed mode.  One hash call yields up to 64 bytes, so
    a whole 64-byte line pad costs a single C-speed call; ``pad_block``
    slices the per-counter digest to preserve AES's 16-byte block framing.
    """

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("key must be non-empty")
        self.key = bytes(key)
        self._key64 = hashlib.blake2b(self.key, digest_size=64).digest()

    def _digest(self, address: int, counter: int, lane: int) -> bytes:
        msg = struct.pack("<QQB", address, counter, lane)
        return hashlib.blake2b(msg, key=self._key64, digest_size=64).digest()

    def pad_block(self, address: int, counter: int, block_index: int) -> bytes:
        if block_index < 0:
            raise ValueError(f"block index out of range: {block_index}")
        lane, offset = divmod(block_index * PAD_BLOCK_BYTES, 64)
        return self._digest(address, counter, lane)[offset: offset + PAD_BLOCK_BYTES]

    def line_pad(self, address: int, counter: int, n_bytes: int) -> bytes:
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        if n_bytes <= 64:
            # The common case (64-byte lines): exactly one C-speed call.
            return self._digest(address, counter, 0)[:n_bytes]
        chunks = []
        produced = 0
        lane = 0
        while produced < n_bytes:
            digest = self._digest(address, counter, lane)
            chunks.append(digest)
            produced += len(digest)
            lane += 1
        return b"".join(chunks)[:n_bytes]

    def line_pad_array(
        self, address: int, counter: int, n_bytes: int
    ) -> np.ndarray:
        if 0 <= n_bytes <= 64:
            # One digest, one view: bytes own an immutable buffer, so the
            # resulting array is already read-only.
            arr = np.frombuffer(self._digest(address, counter, 0), np.uint8)
            return arr if n_bytes == 64 else arr[:n_bytes]
        return np.frombuffer(
            self.line_pad(address, counter, n_bytes), np.uint8
        )


class CachingPadSource(_PadSourceBase):
    """Memoizing LRU wrapper around another :class:`PadSource`.

    DEUCE reads regenerate both the LCTR and TCTR pads on every access; a
    small cache mirrors the hardware's ability to hold recent pads and spares
    the simulation recomputing them.  Whole line pads and individual pad
    blocks are cached separately, each under a true LRU policy (a hit moves
    the entry to the back of the eviction order).
    """

    def __init__(self, inner: PadSource, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._inner = inner
        self._capacity = capacity
        self._cache: OrderedDict[tuple[int, int, int], bytes] = OrderedDict()
        self._line_cache: OrderedDict[
            tuple[int, int, int], np.ndarray
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def inner(self) -> PadSource:
        """The wrapped pad source (e.g. for isinstance checks)."""
        return self._inner

    @property
    def capacity(self) -> int:
        return self._capacity

    def pad_block(self, address: int, counter: int, block_index: int) -> bytes:
        key = (address, counter, block_index)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached
        self.misses += 1
        pad = self._inner.pad_block(address, counter, block_index)
        if len(self._cache) >= self._capacity:
            self._cache.popitem(last=False)
        self._cache[key] = pad
        return pad

    def line_pad_array(
        self, address: int, counter: int, n_bytes: int
    ) -> np.ndarray:
        key = (address, counter, n_bytes)
        cached = self._line_cache.get(key)
        if cached is not None:
            self.hits += 1
            self._line_cache.move_to_end(key)
            return cached
        self.misses += 1
        pad = self._inner.line_pad_array(address, counter, n_bytes)
        if len(self._line_cache) >= self._capacity:
            self._line_cache.popitem(last=False)
        self._line_cache[key] = pad
        return pad

    def line_pad(self, address: int, counter: int, n_bytes: int) -> bytes:
        return self.line_pad_array(address, counter, n_bytes).tobytes()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        """Cache contents, LRU order, and hit counters.

        Restoring this makes a resumed run's ``pad_hits``/``pad_misses``
        match the uninterrupted run exactly.  Pads are pure functions of
        (key, address, counter), so correctness never depends on it — only
        the cache statistics do.  Block-cache keys/values pack into fixed
        (N, 3) / (N, 16) arrays; line-cache values vary in width, so they
        are concatenated and re-split on load from each key's ``n_bytes``.
        """
        n_blocks = len(self._cache)
        block_keys = np.empty((n_blocks, 3), dtype=np.int64)
        block_pads = np.empty((n_blocks, PAD_BLOCK_BYTES), dtype=np.uint8)
        for i, (key, pad) in enumerate(self._cache.items()):
            block_keys[i] = key
            block_pads[i] = np.frombuffer(pad, dtype=np.uint8)
        n_lines = len(self._line_cache)
        line_keys = np.empty((n_lines, 3), dtype=np.int64)
        chunks = []
        for i, (key, pad) in enumerate(self._line_cache.items()):
            line_keys[i] = key
            chunks.append(pad)
        line_pads = (
            np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.uint8)
        )
        return {
            "block_keys": block_keys,
            "block_pads": block_pads,
            "line_keys": line_keys,
            "line_pads": line_pads,
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        block_keys = np.asarray(state["block_keys"], dtype=np.int64)
        block_pads = np.asarray(state["block_pads"], dtype=np.uint8)
        self._cache = OrderedDict(
            (
                tuple(int(v) for v in block_keys[i]),
                block_pads[i].tobytes(),
            )
            for i in range(block_keys.shape[0])
        )
        line_keys = np.asarray(state["line_keys"], dtype=np.int64)
        line_pads = np.asarray(state["line_pads"], dtype=np.uint8)
        self._line_cache = OrderedDict()
        offset = 0
        for i in range(line_keys.shape[0]):
            key = tuple(int(v) for v in line_keys[i])
            pad = line_pads[offset: offset + key[2]].copy()
            offset += key[2]
            self._line_cache[key] = _freeze(pad)
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])


def make_pad_source(kind: str, key: bytes) -> PadSource:
    """Factory used by simulation configs.

    Parameters
    ----------
    kind:
        ``"aes"`` for the real cipher or ``"blake2"`` for the fast surrogate.
    key:
        Secret key bytes.
    """
    if kind == "aes":
        return AesPadSource(key)
    if kind == "blake2":
        return Blake2PadSource(key)
    raise ValueError(f"unknown pad source kind: {kind!r}")
