"""One-time pad (OTP) sources for counter-mode memory encryption.

Counter-mode encryption (paper section 2.3-2.4) never feeds data through the
block cipher.  Instead the cipher turns ``(secret key, line address, line
counter)`` into a pseudorandom *pad*; the pad is XORed with the line for both
encryption and decryption.  Security rests on each (address, counter) pair
producing a pad exactly once.

This module defines the :class:`PadSource` interface and two implementations:

* :class:`AesPadSource` — the real thing: AES (from :mod:`repro.crypto.aes`)
  in counter mode, one 16-byte block per pad block, exactly as a hardware AES
  engine would generate it.
* :class:`Blake2PadSource` — a fast surrogate backed by ``hashlib.blake2b``
  (C implementation in the standard library).  It is a keyed PRF with the
  same avalanche property (each distinct input yields a pad that differs in
  ~50% of bits), which is the only statistical property the paper's write
  analysis depends on.  Sweeps over millions of writebacks use this source;
  functional tests use AES.

Both sources are deterministic for a given key, so traces are reproducible.

Besides the byte-string ``pad_block``/``line_pad`` interface, every source
offers :meth:`PadSource.line_pad_array`, which produces the whole line's pad
as one read-only ``np.uint8`` array — a single BLAKE2 call for 64-byte lines,
or all N AES blocks materialized in one pass — so the vectorized scheme write
paths never round-trip pads through ``bytes``.
"""

from __future__ import annotations

import hashlib
import struct
from collections import OrderedDict
from typing import Protocol

import numpy as np

from repro.crypto.aes import AES, BLOCK_SIZE

#: Pad block width.  AES fixes this at 16 bytes; the BLAKE2 surrogate honours
#: the same framing so the two sources are interchangeable.
PAD_BLOCK_BYTES = BLOCK_SIZE


def _freeze(arr: np.ndarray) -> np.ndarray:
    """Mark a pad array read-only (pads are shared and must never mutate)."""
    arr.setflags(write=False)
    return arr


#: Sentinels for the batched cache walk: distinguish "not cached" from a
#: placeholder reserving the LRU slot of a pad whose value is generated at
#: the end of the chunk.
#: Pre-compiled (address, counter, lane) tweak packer for the Blake2 path.
_pack_qqb = struct.Struct("<QQB").pack

_MISS = object()
_PENDING = object()


class PadSource(Protocol):
    """Anything that can produce counter-mode pads.

    Implementations must be pure functions of ``(key, address, counter,
    block_index)`` — calling :meth:`pad_block` twice with the same arguments
    must return the same bytes, and any change to an argument should change
    roughly half the output bits (avalanche).
    """

    def pad_block(self, address: int, counter: int, block_index: int) -> bytes:
        """Return the 16-byte pad block for one AES block of a line."""
        ...

    def line_pad(self, address: int, counter: int, n_bytes: int) -> bytes:
        """Return a pad covering ``n_bytes`` (concatenated pad blocks)."""
        ...

    def line_pad_array(
        self, address: int, counter: int, n_bytes: int
    ) -> np.ndarray:
        """Return the ``n_bytes`` line pad as a read-only uint8 array."""
        ...

    def line_pads_batch(
        self, addresses: np.ndarray, counters: np.ndarray, n_bytes: int
    ) -> np.ndarray:
        """Return ``(len(addresses), n_bytes)`` pads for a whole write batch."""
        ...


def _pack_tweak(address: int, counter: int, block_index: int) -> bytes:
    """Serialize the pad inputs into the cipher's 16-byte input block.

    Layout: 6-byte line address, 7-byte counter, 1-byte block index, 2 bytes
    of zero padding.  28-bit line counters (the paper's provisioning) fit with
    room to spare; we allow up to 56 bits so lifetime studies never wrap.
    """
    if address < 0 or address >= 1 << 48:
        raise ValueError(f"line address out of range: {address}")
    if counter < 0 or counter >= 1 << 56:
        raise ValueError(f"counter out of range: {counter}")
    if block_index < 0 or block_index >= 256:
        raise ValueError(f"block index out of range: {block_index}")
    return (
        address.to_bytes(6, "little")
        + counter.to_bytes(7, "little")
        + bytes([block_index])
        + b"\x00\x00"
    )


class _PadSourceBase:
    """Shared ``line_pad`` plumbing for concrete pad sources."""

    def pad_block(self, address: int, counter: int, block_index: int) -> bytes:
        raise NotImplementedError

    def line_pad(self, address: int, counter: int, n_bytes: int) -> bytes:
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        n_blocks = -(-n_bytes // PAD_BLOCK_BYTES)
        pad = b"".join(
            self.pad_block(address, counter, i) for i in range(n_blocks)
        )
        return pad[:n_bytes]

    def line_pad_array(
        self, address: int, counter: int, n_bytes: int
    ) -> np.ndarray:
        """Default array framing: one buffer view over the line pad bytes."""
        return _freeze(
            np.frombuffer(self.line_pad(address, counter, n_bytes), np.uint8)
        )

    def line_pads_batch(
        self, addresses: np.ndarray, counters: np.ndarray, n_bytes: int
    ) -> np.ndarray:
        """Whole-batch pad stream: one ``(m, n_bytes)`` array per chunk.

        Default implementation loops :meth:`line_pad_array`; the concrete
        sources override this with genuinely wide keystream generation.
        Row ``i`` equals ``line_pad_array(addresses[i], counters[i],
        n_bytes)`` exactly, so batched and per-write encryption agree
        bit-for-bit.
        """
        m = len(addresses)
        out = np.empty((m, n_bytes), dtype=np.uint8)
        for i in range(m):
            out[i] = self.line_pad_array(
                int(addresses[i]), int(counters[i]), n_bytes
            )
        return _freeze(out)


class AesPadSource(_PadSourceBase):
    """Counter-mode pads from a real AES engine.

    Parameters
    ----------
    key:
        AES key (16/24/32 bytes).  In hardware this is the processor-held
        secret; the memory side never sees it.
    """

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)
        self.key = bytes(key)

    def pad_block(self, address: int, counter: int, block_index: int) -> bytes:
        tweak = _pack_tweak(address, counter, block_index)
        return self._aes.encrypt_block(tweak)

    def line_pads_batch(
        self, addresses: np.ndarray, counters: np.ndarray, n_bytes: int
    ) -> np.ndarray:
        """One wide AES-CTR keystream call covering the whole batch.

        Builds every (address, counter, block) tweak as one ``(m * blocks,
        16)`` array and runs the vectorized cipher over all of them at once.
        """
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        addresses = np.asarray(addresses, dtype=np.int64)
        counters = np.asarray(counters, dtype=np.int64)
        m = addresses.shape[0]
        n_blocks = -(-n_bytes // PAD_BLOCK_BYTES)
        if m == 0 or n_blocks == 0:
            return _freeze(np.zeros((m, n_bytes), dtype=np.uint8))
        if addresses.min(initial=0) < 0 or addresses.max(initial=0) >= 1 << 48:
            raise ValueError("line address out of range")
        if counters.min(initial=0) < 0 or counters.max(initial=0) >= 1 << 56:
            raise ValueError("counter out of range")
        if n_blocks > 256:
            raise ValueError("block index out of range")
        tweaks = np.zeros((m, n_blocks, PAD_BLOCK_BYTES), dtype=np.uint8)
        for byte in range(6):
            tweaks[:, :, byte] = ((addresses >> (8 * byte)) & 0xFF)[:, None]
        for byte in range(7):
            tweaks[:, :, 6 + byte] = ((counters >> (8 * byte)) & 0xFF)[:, None]
        tweaks[:, :, 13] = np.arange(n_blocks, dtype=np.uint8)[None, :]
        stream = self._aes.encrypt_blocks_array(
            tweaks.reshape(m * n_blocks, PAD_BLOCK_BYTES)
        )
        pads = stream.reshape(m, n_blocks * PAD_BLOCK_BYTES)[:, :n_bytes]
        return _freeze(np.ascontiguousarray(pads))


class Blake2PadSource(_PadSourceBase):
    """Fast keyed-PRF pads for large simulation sweeps.

    Uses ``blake2b`` in keyed mode.  One hash call yields up to 64 bytes, so
    a whole 64-byte line pad costs a single C-speed call; ``pad_block``
    slices the per-counter digest to preserve AES's 16-byte block framing.
    """

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("key must be non-empty")
        self.key = bytes(key)
        self._key64 = hashlib.blake2b(self.key, digest_size=64).digest()
        # Keyed-constructor setup (key padding + one compression) dominates
        # short-message hashing; pre-absorbing the key once and cloning the
        # hasher per call makes each pad ~2.5x cheaper than a fresh keyed
        # constructor while producing the identical digest.
        self._h0 = hashlib.blake2b(key=self._key64, digest_size=64)
        # The write path's innermost per-pad operation: bind every global
        # (the pre-keyed hasher's copy, struct pack, frombuffer, dtype) into
        # a closure so each call is pure C work plus one LOAD_FAST each.
        # Shadowing the method with an instance attribute keeps the class
        # API unchanged; hashers are unpicklable so nothing serialized this
        # object before either.
        copy = self._h0.copy
        pack = _pack_qqb
        frombuffer = np.frombuffer
        uint8 = np.uint8
        fallback = self.line_pad

        def line_pad_array(
            address: int, counter: int, n_bytes: int
        ) -> np.ndarray:
            if 0 <= n_bytes <= 64:
                h = copy()
                h.update(pack(address, counter, 0))
                arr = frombuffer(h.digest(), uint8)
                return arr if n_bytes == 64 else arr[:n_bytes]
            return frombuffer(fallback(address, counter, n_bytes), uint8)

        self.line_pad_array = line_pad_array

    def _digest(self, address: int, counter: int, lane: int) -> bytes:
        h = self._h0.copy()
        h.update(_pack_qqb(address, counter, lane))
        return h.digest()

    def pad_block(self, address: int, counter: int, block_index: int) -> bytes:
        if block_index < 0:
            raise ValueError(f"block index out of range: {block_index}")
        lane, offset = divmod(block_index * PAD_BLOCK_BYTES, 64)
        return self._digest(address, counter, lane)[offset: offset + PAD_BLOCK_BYTES]

    def line_pad(self, address: int, counter: int, n_bytes: int) -> bytes:
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        if n_bytes <= 64:
            # The common case (64-byte lines): exactly one C-speed call.
            return self._digest(address, counter, 0)[:n_bytes]
        chunks = []
        produced = 0
        lane = 0
        while produced < n_bytes:
            digest = self._digest(address, counter, lane)
            chunks.append(digest)
            produced += len(digest)
            lane += 1
        return b"".join(chunks)[:n_bytes]

    def line_pads_batch(
        self, addresses: np.ndarray, counters: np.ndarray, n_bytes: int
    ) -> np.ndarray:
        """Batch keystream: one cloned-hasher digest per row, one big join.

        The per-row work is three C calls (copy/update/digest) on the
        pre-keyed hasher; the digests are joined into a single buffer so the
        result is one contiguous ``(m, n_bytes)`` view with no per-row numpy
        allocation.
        """
        m = len(addresses)
        if m == 0:
            return _freeze(np.zeros((0, n_bytes), dtype=np.uint8))
        if not 0 <= n_bytes <= 64:
            return super().line_pads_batch(addresses, counters, n_bytes)
        pack = _pack_qqb
        copy = self._h0.copy
        addr_list = np.asarray(addresses, dtype=np.int64).tolist()
        ctr_list = np.asarray(counters, dtype=np.int64).tolist()
        out = []
        append = out.append
        for a, c in zip(addr_list, ctr_list):
            h = copy()
            h.update(pack(a, c, 0))
            append(h.digest())
        arr = np.frombuffer(b"".join(out), np.uint8).reshape(m, 64)
        return arr if n_bytes == 64 else arr[:, :n_bytes]


class CachingPadSource(_PadSourceBase):
    """Memoizing LRU wrapper around another :class:`PadSource`.

    DEUCE reads regenerate both the LCTR and TCTR pads on every access; a
    small cache mirrors the hardware's ability to hold recent pads and spares
    the simulation recomputing them.  Whole line pads and individual pad
    blocks are cached separately, each under a true LRU policy (a hit moves
    the entry to the back of the eviction order).
    """

    def __init__(self, inner: PadSource, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._inner = inner
        self._capacity = capacity
        self._cache: OrderedDict[tuple[int, int, int], bytes] = OrderedDict()
        self._line_cache: OrderedDict[
            tuple[int, int, int], np.ndarray
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def inner(self) -> PadSource:
        """The wrapped pad source (e.g. for isinstance checks)."""
        return self._inner

    @property
    def capacity(self) -> int:
        return self._capacity

    def pad_block(self, address: int, counter: int, block_index: int) -> bytes:
        key = (address, counter, block_index)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached
        self.misses += 1
        pad = self._inner.pad_block(address, counter, block_index)
        if len(self._cache) >= self._capacity:
            self._cache.popitem(last=False)
        self._cache[key] = pad
        return pad

    def line_pad_array(
        self, address: int, counter: int, n_bytes: int
    ) -> np.ndarray:
        key = (address, counter, n_bytes)
        cached = self._line_cache.get(key)
        if cached is not None:
            self.hits += 1
            self._line_cache.move_to_end(key)
            return cached
        self.misses += 1
        pad = self._inner.line_pad_array(address, counter, n_bytes)
        if len(self._line_cache) >= self._capacity:
            self._line_cache.popitem(last=False)
        self._line_cache[key] = pad
        return pad

    def line_pad(self, address: int, counter: int, n_bytes: int) -> bytes:
        return self.line_pad_array(address, counter, n_bytes).tobytes()

    def line_pads_batch(
        self, addresses: np.ndarray, counters: np.ndarray, n_bytes: int
    ) -> np.ndarray:
        """Batched line pads with per-request LRU bookkeeping.

        Walks the requests in order, performing exactly the hit/miss
        accounting, recency updates, and evictions the per-write path would
        — a miss installs a placeholder at the correct LRU position — then
        generates every missing pad with one wide call to the inner source.
        Cache contents, eviction order, and the hit/miss counters end up
        byte-identical to ``m`` sequential :meth:`line_pad_array` calls,
        which is what keeps checkpoint and ``RunResult`` pad stats invariant
        under chunking.
        """
        m = len(addresses)
        cache = self._line_cache
        capacity = self._capacity
        addr_list = np.asarray(addresses, dtype=np.int64).tolist()
        ctr_list = np.asarray(counters, dtype=np.int64).tolist()
        keys = [(a, c, n_bytes) for a, c in zip(addr_list, ctr_list)]
        # All-miss fast path.  The dominant batch shapes — a working set's
        # initial encryption and DEUCE/Encr write chunks, whose counters are
        # strictly fresh — never hit the cache.  When every key is distinct
        # and absent (both checks run at C speed), the serial walk reduces
        # to: m misses, evict the max(0, size + m - capacity) oldest
        # entries, append the surviving keys in order.  Final cache
        # contents, LRU order, and hit/miss counters are identical to the
        # walk below; only the per-row Python bookkeeping is skipped.
        if m and len(set(keys)) == m and cache.keys().isdisjoint(keys):
            generated = _freeze(
                self._inner.line_pads_batch(
                    np.asarray(addresses, dtype=np.int64),
                    np.asarray(counters, dtype=np.int64),
                    n_bytes,
                )
            )
            self.misses += m
            start = m - capacity
            if start >= 0:
                cache.clear()
            else:
                start = 0
                for _ in range(max(0, len(cache) + m - capacity)):
                    cache.popitem(last=False)
            # Row views of the frozen buffer are themselves read-only.
            cache.update(zip(keys[start:], list(generated[start:])))
            return generated
        out = np.empty((m, n_bytes), dtype=np.uint8)
        miss_keys: list[tuple[int, int, int]] = []
        fill_first: list[int] = []
        fill_extra: dict[int, list[int]] = {}
        open_miss: dict[tuple[int, int, int], int] = {}
        # Hot loop: every dict operation bound to a local, cache size
        # tracked without len() per row.  Output rows are not filled here —
        # hits are grouped per key and misses per generated row, so the
        # copies into ``out`` happen as a few wide scatters afterwards.
        cache_get = cache.get
        move_to_end = cache.move_to_end
        popitem = cache.popitem
        size = len(cache)
        hits = 0
        misses = 0
        hit_fill: dict[
            tuple[int, int, int], tuple[np.ndarray, list[int]]
        ] = {}
        hit_get = hit_fill.get
        for i, key in enumerate(keys):
            cached = cache_get(key, _MISS)
            if cached is _MISS:
                misses += 1
                if size >= capacity:
                    evicted, _ = popitem(last=False)
                    open_miss.pop(evicted, None)
                else:
                    size += 1
                cache[key] = _PENDING
                open_miss[key] = len(miss_keys)
                fill_first.append(i)
                miss_keys.append(key)
            elif cached is _PENDING:
                hits += 1
                move_to_end(key)
                j = open_miss[key]
                extra = fill_extra.get(j)
                if extra is None:
                    fill_extra[j] = [i]
                else:
                    extra.append(i)
            else:
                hits += 1
                move_to_end(key)
                entry = hit_get(key)
                if entry is None:
                    hit_fill[key] = (cached, [i])
                else:
                    entry[1].append(i)
        self.hits += hits
        self.misses += misses
        # Pads are pure functions of their key, so every hit on a key saw
        # the same value — one wide assignment per distinct key.
        for pad, rows in hit_fill.values():
            out[rows] = pad
        if miss_keys:
            n_miss = len(miss_keys)
            generated = _freeze(
                self._inner.line_pads_batch(
                    np.fromiter(
                        (k[0] for k in miss_keys),
                        dtype=np.int64,
                        count=n_miss,
                    ),
                    np.fromiter(
                        (k[1] for k in miss_keys),
                        dtype=np.int64,
                        count=n_miss,
                    ),
                    n_bytes,
                )
            )
            out[fill_first] = generated
            for j, rows in fill_extra.items():
                out[rows] = generated[j]
            # An entry still in ``open_miss`` under index ``j`` was neither
            # evicted nor re-missed after row ``j`` — its placeholder is
            # necessarily the ``_PENDING`` we installed, so no cache lookup
            # is needed.  Row views of the frozen ``generated`` buffer are
            # themselves read-only.
            open_miss_get = open_miss.get
            for j, key in enumerate(miss_keys):
                if open_miss_get(key) == j:
                    cache[key] = generated[j]
        return _freeze(out)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        """Cache contents, LRU order, and hit counters.

        Restoring this makes a resumed run's ``pad_hits``/``pad_misses``
        match the uninterrupted run exactly.  Pads are pure functions of
        (key, address, counter), so correctness never depends on it — only
        the cache statistics do.  Block-cache keys/values pack into fixed
        (N, 3) / (N, 16) arrays; line-cache values vary in width, so they
        are concatenated and re-split on load from each key's ``n_bytes``.
        """
        n_blocks = len(self._cache)
        block_keys = np.empty((n_blocks, 3), dtype=np.int64)
        block_pads = np.empty((n_blocks, PAD_BLOCK_BYTES), dtype=np.uint8)
        for i, (key, pad) in enumerate(self._cache.items()):
            block_keys[i] = key
            block_pads[i] = np.frombuffer(pad, dtype=np.uint8)
        n_lines = len(self._line_cache)
        line_keys = np.empty((n_lines, 3), dtype=np.int64)
        chunks = []
        for i, (key, pad) in enumerate(self._line_cache.items()):
            line_keys[i] = key
            chunks.append(pad)
        line_pads = (
            np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.uint8)
        )
        return {
            "block_keys": block_keys,
            "block_pads": block_pads,
            "line_keys": line_keys,
            "line_pads": line_pads,
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        block_keys = np.asarray(state["block_keys"], dtype=np.int64)
        block_pads = np.asarray(state["block_pads"], dtype=np.uint8)
        self._cache = OrderedDict(
            (
                tuple(int(v) for v in block_keys[i]),
                block_pads[i].tobytes(),
            )
            for i in range(block_keys.shape[0])
        )
        line_keys = np.asarray(state["line_keys"], dtype=np.int64)
        line_pads = np.asarray(state["line_pads"], dtype=np.uint8)
        self._line_cache = OrderedDict()
        offset = 0
        for i in range(line_keys.shape[0]):
            key = tuple(int(v) for v in line_keys[i])
            pad = line_pads[offset: offset + key[2]].copy()
            offset += key[2]
            self._line_cache[key] = _freeze(pad)
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])


def make_pad_source(kind: str, key: bytes) -> PadSource:
    """Factory used by simulation configs.

    Parameters
    ----------
    kind:
        ``"aes"`` for the real cipher or ``"blake2"`` for the fast surrogate.
    key:
        Secret key bytes.
    """
    from repro.registry import PAD_SOURCES

    return PAD_SOURCES.create(kind, key)
