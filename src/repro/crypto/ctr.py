"""Counter-mode line encryption engine.

Implements the paper's Figure 4: encryption and decryption of a cache line by
XOR with a one-time pad generated from ``(key, line address, per-line
counter)``.  The engine is scheme-agnostic; DEUCE layers its dual-counter word
selection (Figure 7) on top via :func:`mix_pads`.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.pads import PadSource
from repro.memory import bitops


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return bitops.xor(a, b)


class CounterModeEngine:
    """Encrypt/decrypt whole lines with counter-mode OTPs.

    Parameters
    ----------
    pads:
        The pad source (AES or surrogate).
    line_bytes:
        Cache-line size; the paper fixes 64 bytes.
    """

    def __init__(self, pads: PadSource, line_bytes: int = 64) -> None:
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        self.pads = pads
        self.line_bytes = line_bytes

    def pad(self, address: int, counter: int) -> bytes:
        """The full-line pad for (address, counter)."""
        return self.pads.line_pad(address, counter, self.line_bytes)

    def encrypt(self, plaintext: bytes, address: int, counter: int) -> bytes:
        """Encrypt a line under the given counter value (Figure 4a)."""
        self._check(plaintext)
        return xor_bytes(plaintext, self.pad(address, counter))

    def decrypt(self, ciphertext: bytes, address: int, counter: int) -> bytes:
        """Decrypt a line; identical to encryption in counter mode."""
        self._check(ciphertext)
        return xor_bytes(ciphertext, self.pad(address, counter))

    def _check(self, data: bytes) -> None:
        if len(data) != self.line_bytes:
            raise ValueError(
                f"line must be {self.line_bytes} bytes, got {len(data)}"
            )

    def keystream(
        self, addresses: np.ndarray, counters: np.ndarray
    ) -> np.ndarray:
        """Whole-batch CTR keystream: ``(m, line_bytes)`` pads in one call.

        Row ``i`` equals ``pad(addresses[i], counters[i])``; the heavy
        lifting is the pad source's wide batch path (one vectorized AES pass
        or one joined BLAKE2 digest stream per chunk).
        """
        return self.pads.line_pads_batch(addresses, counters, self.line_bytes)


def mix_pads_array(
    pad_leading: np.ndarray,
    pad_trailing: np.ndarray,
    modified: np.ndarray,
    word_bytes: int,
) -> np.ndarray:
    """Vectorized per-word pad select (Figure 7) on uint8 pad arrays.

    Parameters
    ----------
    pad_leading, pad_trailing:
        Full-line pads (uint8 arrays) generated with LCTR and TCTR.
    modified:
        One flag per word (any integer/bool dtype; nonzero means modified).
    word_bytes:
        DEUCE tracking granularity (2 bytes by default in the paper).
    """
    if pad_leading.size != pad_trailing.size:
        raise ValueError("pad length mismatch")
    if modified.size * word_bytes != pad_leading.size:
        raise ValueError(
            f"{modified.size} words x {word_bytes} bytes != "
            f"{pad_leading.size}-byte line"
        )
    byte_mask = np.repeat(modified.astype(bool, copy=False), word_bytes)
    return np.where(byte_mask, pad_leading, pad_trailing)


def mix_pads(
    pad_leading: bytes,
    pad_trailing: bytes,
    modified: list[bool],
    word_bytes: int,
) -> bytes:
    """Build DEUCE's effective per-line pad (Figure 7).

    Words whose modified bit is set take their slice from the leading-counter
    pad; unmodified words take the trailing-counter pad.  The result can be
    XORed with the stored line exactly like an ordinary counter-mode pad.
    Byte-string front end over :func:`mix_pads_array`.
    """
    mixed = mix_pads_array(
        np.frombuffer(pad_leading, dtype=np.uint8),
        np.frombuffer(pad_trailing, dtype=np.uint8),
        np.asarray(modified, dtype=bool),
        word_bytes,
    )
    return mixed.astype(np.uint8, copy=False).tobytes()
