"""Counter-mode line encryption engine.

Implements the paper's Figure 4: encryption and decryption of a cache line by
XOR with a one-time pad generated from ``(key, line address, per-line
counter)``.  The engine is scheme-agnostic; DEUCE layers its dual-counter word
selection (Figure 7) on top via :func:`mix_pads`.
"""

from __future__ import annotations

from repro.crypto.pads import PadSource


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


class CounterModeEngine:
    """Encrypt/decrypt whole lines with counter-mode OTPs.

    Parameters
    ----------
    pads:
        The pad source (AES or surrogate).
    line_bytes:
        Cache-line size; the paper fixes 64 bytes.
    """

    def __init__(self, pads: PadSource, line_bytes: int = 64) -> None:
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        self.pads = pads
        self.line_bytes = line_bytes

    def pad(self, address: int, counter: int) -> bytes:
        """The full-line pad for (address, counter)."""
        return self.pads.line_pad(address, counter, self.line_bytes)

    def encrypt(self, plaintext: bytes, address: int, counter: int) -> bytes:
        """Encrypt a line under the given counter value (Figure 4a)."""
        self._check(plaintext)
        return xor_bytes(plaintext, self.pad(address, counter))

    def decrypt(self, ciphertext: bytes, address: int, counter: int) -> bytes:
        """Decrypt a line; identical to encryption in counter mode."""
        self._check(ciphertext)
        return xor_bytes(ciphertext, self.pad(address, counter))

    def _check(self, data: bytes) -> None:
        if len(data) != self.line_bytes:
            raise ValueError(
                f"line must be {self.line_bytes} bytes, got {len(data)}"
            )


def mix_pads(
    pad_leading: bytes,
    pad_trailing: bytes,
    modified: list[bool],
    word_bytes: int,
) -> bytes:
    """Build DEUCE's effective per-line pad (Figure 7).

    Words whose modified bit is set take their slice from the leading-counter
    pad; unmodified words take the trailing-counter pad.  The result can be
    XORed with the stored line exactly like an ordinary counter-mode pad.

    Parameters
    ----------
    pad_leading, pad_trailing:
        Full-line pads generated with LCTR and TCTR respectively.
    modified:
        One flag per word; ``len(modified) * word_bytes`` must equal the
        line size.
    word_bytes:
        DEUCE tracking granularity (2 bytes by default in the paper).
    """
    if len(pad_leading) != len(pad_trailing):
        raise ValueError("pad length mismatch")
    if len(modified) * word_bytes != len(pad_leading):
        raise ValueError(
            f"{len(modified)} words x {word_bytes} bytes != "
            f"{len(pad_leading)}-byte line"
        )
    out = bytearray(len(pad_leading))
    for w, is_mod in enumerate(modified):
        lo = w * word_bytes
        hi = lo + word_bytes
        out[lo:hi] = pad_leading[lo:hi] if is_mod else pad_trailing[lo:hi]
    return bytes(out)
