"""Key versioning: what happens when a line counter overflows.

The paper provisions 28-bit per-line counters (section 3.1).  A counter
must never wrap — counter mode's security is exactly the no-pad-reuse
invariant — so a real controller re-keys a line whose counter approaches
saturation: re-encrypt under a fresh key version and reset the counter.

:class:`VersionedPadSource` provides the mechanism: each line has a key
*version*; the effective key is derived from the master key and the
version, so bumping a line's version moves it into a fresh pad space where
old (address, counter) pairs are safe to use again.
:class:`SecureMemoryController` uses it when ``counter_bits`` is set.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.crypto.pads import PadSource, make_pad_source


class VersionedPadSource:
    """Pad source with a per-line key version.

    Parameters
    ----------
    master_key:
        The on-chip secret all versioned keys derive from.
    kind:
        Underlying pad source kind (``"blake2"`` or ``"aes"``).

    Derived keys are ``BLAKE2(version, key=master_key)``; version 0 is the
    initial state for every line.
    """

    def __init__(self, master_key: bytes, kind: str = "blake2") -> None:
        if not master_key:
            raise ValueError("master_key must be non-empty")
        self.master_key = bytes(master_key)
        self.kind = kind
        self._versions: dict[int, int] = {}
        self._sources: dict[int, PadSource] = {}

    def _source_for_version(self, version: int) -> PadSource:
        source = self._sources.get(version)
        if source is None:
            derived = hashlib.blake2b(
                version.to_bytes(8, "little"),
                key=self.master_key,
                digest_size=16,
            ).digest()
            source = make_pad_source(self.kind, derived)
            self._sources[version] = source
        return source

    def version_of(self, address: int) -> int:
        return self._versions.get(address, 0)

    def bump_version(self, address: int) -> int:
        """Move a line to the next key version; returns the new version.

        The caller must re-encrypt the line's current contents under the
        new version (and may then reset its counter to zero).
        """
        version = self.version_of(address) + 1
        self._versions[address] = version
        return version

    # -- PadSource interface ----------------------------------------------------

    def pad_block(self, address: int, counter: int, block_index: int) -> bytes:
        return self._source_for_version(self.version_of(address)).pad_block(
            address, counter, block_index
        )

    def line_pad(self, address: int, counter: int, n_bytes: int) -> bytes:
        return self._source_for_version(self.version_of(address)).line_pad(
            address, counter, n_bytes
        )

    def line_pad_array(
        self, address: int, counter: int, n_bytes: int
    ) -> np.ndarray:
        return self._source_for_version(
            self.version_of(address)
        ).line_pad_array(address, counter, n_bytes)
