"""Trace statistics: characterize a writeback stream's write behaviour.

Computes from any :class:`~repro.workloads.trace.Trace` the quantities the
paper's analysis is built on — how many words a writeback touches, how many
bits flip inside touched words, how writes spread over AES blocks and
128-bit write regions, footprint stability, and the per-bit-position skew of
Figure 12.  Used to validate the calibrated profiles and to characterize
user-supplied traces before choosing a scheme.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.memory import bitops
from repro.workloads.trace import Trace


@dataclass
class TraceStats:
    """Aggregate write-behaviour statistics of one trace.

    All "per write" figures are averages over the trace's writebacks.
    """

    n_writes: int
    n_lines_touched: int
    avg_bits_flipped: float
    avg_words_modified: float
    avg_bits_per_modified_word: float
    avg_blocks_touched: float
    avg_regions_touched: float
    footprint_sizes: dict[int, int] = field(default_factory=dict)
    position_writes: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    word_position_writes: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )

    @property
    def flip_fraction(self) -> float:
        """Raw modified-bits fraction (the NoEncr-DCW figure of merit)."""
        if self.position_writes.size == 0 or self.n_writes == 0:
            return 0.0
        return float(self.position_writes.sum()) / (
            self.n_writes * self.position_writes.size
        )

    @property
    def bit_position_skew(self) -> float:
        """Figure 12's max-over-mean per-bit-position write ratio."""
        if self.position_writes.size == 0:
            return 0.0
        mean = self.position_writes.mean()
        return float(self.position_writes.max()) / mean if mean > 0 else 0.0

    @property
    def avg_footprint_size(self) -> float:
        """Average per-line footprint (distinct words ever modified)."""
        if not self.footprint_sizes:
            return 0.0
        return sum(self.footprint_sizes.values()) / len(self.footprint_sizes)

    def summary(self) -> dict[str, float]:
        return {
            "writes": self.n_writes,
            "lines": self.n_lines_touched,
            "flip_pct": round(100 * self.flip_fraction, 2),
            "words_per_write": round(self.avg_words_modified, 2),
            "bits_per_word": round(self.avg_bits_per_modified_word, 2),
            "blocks_per_write": round(self.avg_blocks_touched, 2),
            "regions_per_write": round(self.avg_regions_touched, 2),
            "footprint": round(self.avg_footprint_size, 2),
            "skew": round(self.bit_position_skew, 1),
        }


def analyze_trace(
    trace: Trace,
    word_bytes: int = 2,
    block_bytes: int = 16,
) -> TraceStats:
    """Walk a trace and compute :class:`TraceStats`.

    Parameters
    ----------
    trace:
        The writeback stream (with initial line images).
    word_bytes:
        Word granularity for word-level statistics (DEUCE's 2B default).
    block_bytes:
        AES-block granularity for block-spread statistics.
    """
    if trace.line_bytes % word_bytes or trace.line_bytes % block_bytes:
        raise ValueError("word/block size must divide the line size")
    line_bits = 8 * trace.line_bytes
    words_per_block = block_bytes // word_bytes
    regions = max(1, line_bits // 128)
    words_per_region = (trace.line_bytes // regions) // word_bytes

    current = dict(trace.initial)
    footprints: dict[int, set[int]] = {}
    position_writes = np.zeros(line_bits, dtype=np.int64)
    word_position_writes = np.zeros(
        trace.line_bytes // word_bytes, dtype=np.int64
    )
    total_flips = 0
    total_words = 0
    blocks_touched = 0
    regions_touched = 0

    for rec in trace.records:
        old = current[rec.address]
        positions = bitops.flipped_positions(old, rec.data)
        np.add.at(position_writes, positions, 1)
        total_flips += int(positions.size)

        words = bitops.changed_words(old, rec.data, word_bytes)
        total_words += len(words)
        np.add.at(word_position_writes, words, 1)
        footprints.setdefault(rec.address, set()).update(words)
        blocks_touched += len({w // words_per_block for w in words})
        regions_touched += len({w // words_per_region for w in words})
        current[rec.address] = rec.data

    n = len(trace.records)
    return TraceStats(
        n_writes=n,
        n_lines_touched=len(footprints),
        avg_bits_flipped=total_flips / n if n else 0.0,
        avg_words_modified=total_words / n if n else 0.0,
        avg_bits_per_modified_word=(
            total_flips / total_words if total_words else 0.0
        ),
        avg_blocks_touched=blocks_touched / n if n else 0.0,
        avg_regions_touched=regions_touched / n if n else 0.0,
        footprint_sizes={a: len(s) for a, s in footprints.items()},
        position_writes=position_writes,
        word_position_writes=word_position_writes,
    )


def recommend_scheme(stats: TraceStats) -> tuple[str, str]:
    """Heuristic scheme recommendation from trace statistics.

    Returns (scheme name, one-line rationale) following the paper's
    findings: DEUCE for sparse stable footprints, DynDEUCE when dense
    writes appear, FNW when virtually every word changes every write.
    """
    words_per_line = (
        stats.word_position_writes.size if stats.word_position_writes.size else 32
    )
    density = stats.avg_words_modified / words_per_line
    if density > 0.8:
        return (
            "encr-fnw",
            "nearly every word changes per write: DEUCE degenerates to "
            "full re-encryption, FNW's bound is all that helps",
        )
    if density > 0.4:
        return (
            "dyndeuce",
            "mixed density: DynDEUCE keeps DEUCE's wins and falls back "
            "to FNW on dense writes for one extra metadata bit",
        )
    return (
        "deuce",
        "sparse, footprint-stable writes: DEUCE re-encrypts only the "
        "few modified words",
    )
