"""On-disk KV request suites: record once, replay bit-identically.

A :class:`RequestSuite` is the request-level analogue of a saved
:class:`~repro.workloads.trace.Trace`: the exact put/get/delete sequence a
profile+seed produced, plus everything needed to re-drive it through a
fresh :class:`~repro.workloads.kv.KvEngine`.  Because engine store
contents are deterministic functions of the request sequence (see
:mod:`repro.workloads.kv`), replaying a suite yields a writeback trace
bit-identical to the one recorded — which makes suites reusable artifacts:
archive the JSONL next to a paper figure, replay it years later on a
changed codebase, and diff the traces to prove the workload didn't move.

Two formats, chosen by file extension:

* ``.jsonl`` — one header object then one compact ``[op, key, size]``
  array per request; greppable and diffable.
* ``.npz`` — compressed NumPy arrays (op codes / keys / sizes) with the
  same header as a JSON string; ~10x smaller for long streams.

:data:`CANNED_SUITES` ships named recipes (profile + seed + length) so
tests, CI's record/replay parity check, and EXPERIMENTS.md all pull the
same workloads by name.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.workloads.kv import (
    KV_OPS,
    KvProfile,
    KvRequest,
    drive_requests,
    request_stream,
)
from repro.workloads.profiles import get_profile
from repro.workloads.trace import Trace

__all__ = [
    "CANNED_SUITES",
    "RequestSuite",
    "build_canned_suite",
    "load_suite",
    "record_suite",
    "replay_suite",
]

_FORMAT = "deuce-kv-suite"
_VERSION = 1

#: op name -> on-disk op code (npz ``ops`` array, header docs).
_OP_CODE = {op: i for i, op in enumerate(KV_OPS)}


@dataclass(frozen=True)
class RequestSuite:
    """A recorded KV request stream plus its replay context.

    Attributes
    ----------
    profile_name:
        Registry name the profile resolves through on replay.
    seed:
        Engine seed (layout shuffle + value contents), *not* consulted
        for request generation on replay — the requests are stored.
    line_bytes:
        Cache line size the trace was recorded at.
    n_writes:
        Writeback count the recording stopped at; replay stops at the
        same count.
    params:
        ``workload_params`` overrides applied to the registry profile.
    requests:
        The applied requests, in order, including the populate phase.
    """

    profile_name: str
    seed: int
    line_bytes: int
    n_writes: int
    params: dict = field(default_factory=dict)
    requests: tuple[KvRequest, ...] = ()

    def _header(self) -> dict:
        return {
            "format": _FORMAT,
            "version": _VERSION,
            "profile": self.profile_name,
            "seed": self.seed,
            "line_bytes": self.line_bytes,
            "n_writes": self.n_writes,
            "params": dict(self.params),
            "n_requests": len(self.requests),
            "ops": list(KV_OPS),
        }

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the suite; format chosen by extension (.jsonl / .npz)."""
        path = Path(path)
        if path.suffix == ".npz":
            self._save_npz(path)
        else:
            self._save_jsonl(path)

    def _save_jsonl(self, path: Path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self._header(), sort_keys=True) + "\n")
            for req in self.requests:
                fh.write(
                    json.dumps([req.op, req.key, req.value_size]) + "\n"
                )

    def _save_npz(self, path: Path) -> None:
        n = len(self.requests)
        ops = np.empty(n, dtype=np.uint8)
        keys = np.empty(n, dtype=np.int64)
        sizes = np.empty(n, dtype=np.int32)
        for i, req in enumerate(self.requests):
            ops[i] = _OP_CODE[req.op]
            keys[i] = req.key
            sizes[i] = req.value_size
        np.savez_compressed(
            path,
            header=np.array(json.dumps(self._header(), sort_keys=True)),
            ops=ops,
            keys=keys,
            sizes=sizes,
        )

    @classmethod
    def load(cls, path: str | Path) -> "RequestSuite":
        """Read a suite written by :meth:`save`."""
        path = Path(path)
        if path.suffix == ".npz":
            return cls._load_npz(path)
        return cls._load_jsonl(path)

    @classmethod
    def _from_header(
        cls, header: dict, requests: tuple[KvRequest, ...], path: Path
    ) -> "RequestSuite":
        if header.get("format") != _FORMAT:
            raise ValueError(f"{path}: not a {_FORMAT} file")
        if header.get("version") != _VERSION:
            raise ValueError(
                f"{path}: unsupported suite version {header.get('version')}"
            )
        if len(requests) != header["n_requests"]:
            raise ValueError(
                f"{path}: truncated suite "
                f"({len(requests)}/{header['n_requests']} requests)"
            )
        return cls(
            profile_name=header["profile"],
            seed=int(header["seed"]),
            line_bytes=int(header["line_bytes"]),
            n_writes=int(header["n_writes"]),
            params=dict(header.get("params", {})),
            requests=requests,
        )

    @classmethod
    def _load_jsonl(cls, path: Path) -> "RequestSuite":
        with open(path, encoding="utf-8") as fh:
            header = json.loads(fh.readline())
            requests = tuple(
                KvRequest(op, int(key), int(size))
                for op, key, size in (json.loads(line) for line in fh if line.strip())
            )
        return cls._from_header(header, requests, path)

    @classmethod
    def _load_npz(cls, path: Path) -> "RequestSuite":
        with np.load(path, allow_pickle=False) as data:
            header = json.loads(str(data["header"]))
            ops, keys, sizes = data["ops"], data["keys"], data["sizes"]
            requests = tuple(
                KvRequest(KV_OPS[int(ops[i])], int(keys[i]), int(sizes[i]))
                for i in range(ops.shape[0])
            )
        return cls._from_header(header, requests, path)


def load_suite(path: str | Path) -> RequestSuite:
    """Module-level alias for :meth:`RequestSuite.load`."""
    return RequestSuite.load(path)


def _resolve_profile(
    profile: KvProfile | str, params: dict | None
) -> tuple[KvProfile, str, dict]:
    if isinstance(profile, str):
        resolved = get_profile(profile, params)
        if not isinstance(resolved, KvProfile):
            raise ValueError(
                f"workload {profile!r} is not a KV profile; suites record "
                "request streams, not statistical traces"
            )
        return resolved, profile, dict(params or {})
    if params:
        profile = replace(profile, **params)
    return profile, profile.name, dict(params or {})


def record_suite(
    profile: KvProfile | str,
    n_writes: int,
    seed: int = 0,
    line_bytes: int = 64,
    params: dict | None = None,
) -> tuple[RequestSuite, Trace]:
    """Generate a request stream and record exactly the applied prefix.

    Returns the suite (ready to :meth:`~RequestSuite.save`) and the trace
    it produced, so callers can assert replay parity without regenerating.
    """
    resolved, name, params = _resolve_profile(profile, params)
    collected: list[KvRequest] = []
    from itertools import islice

    max_requests = resolved.n_keys + 64 * n_writes + 1000
    stream = islice(request_stream(resolved, seed), max_requests)
    trace, _engine = drive_requests(
        resolved, seed, line_bytes, stream, n_writes, collect=collected
    )
    suite = RequestSuite(
        profile_name=name,
        seed=seed,
        line_bytes=line_bytes,
        n_writes=n_writes,
        params=params,
        requests=tuple(collected),
    )
    return suite, trace


def replay_suite(
    suite: RequestSuite, profile: KvProfile | None = None
) -> Trace:
    """Re-drive a recorded suite through a fresh engine.

    The result is bit-identical to the trace :func:`record_suite`
    returned: same requests, same engine seed, same deterministic store
    contents.  ``profile`` overrides the registry lookup for profiles
    that were never registered.
    """
    if profile is None:
        profile, _, _ = _resolve_profile(suite.profile_name, suite.params)
    trace, _engine = drive_requests(
        profile,
        suite.seed,
        suite.line_bytes,
        suite.requests,
        suite.n_writes,
    )
    return trace


#: Named recipes: (profile, n_writes, seed, params).  Short enough for CI,
#: long enough that every recipe reaches its steady phase.
CANNED_SUITES: dict[str, dict] = {
    "etc-smoke": {
        "profile": "kv-etc", "n_writes": 4000, "seed": 7, "params": {},
    },
    "udb-steady": {
        "profile": "kv-udb", "n_writes": 8000, "seed": 11, "params": {},
    },
    "zippy-churn": {
        "profile": "kv-zippydb", "n_writes": 6000, "seed": 13,
        "params": {"delete_weight": 15.0},
    },
    "cache-hot": {
        "profile": "kv-cache", "n_writes": 6000, "seed": 17,
        "params": {"zipf_alpha": 1.4},
    },
}


def build_canned_suite(name: str) -> tuple[RequestSuite, Trace]:
    """Record one of :data:`CANNED_SUITES` by name."""
    try:
        spec = CANNED_SUITES[name]
    except KeyError:
        known = ", ".join(sorted(CANNED_SUITES))
        raise ValueError(
            f"unknown canned suite {name!r}; known: {known}"
        ) from None
    return record_suite(
        spec["profile"],
        spec["n_writes"],
        seed=spec["seed"],
        params=dict(spec["params"]),
    )
