"""KV-service request workloads driving organic PCM traffic.

DEUCE's evaluation stops at Table 2's twelve SPEC-like writeback streams.
Real NVM main memory sits behind a *service*: millions of users issuing
put/get/delete requests against a key-value store whose working set lives
in persistent memory.  This module models that traffic shape end to end:

* :class:`KvProfile` — a named request mix (key count, value-size
  distribution, Zipfian key popularity, put/get/delete weights) with an
  explicit populate -> steady-state phase structure, in the style of the
  kv-emulator workload profiles (ETC/UDB/ZippyDB traces from production
  Meta/RocksDB deployments).
* :func:`request_stream` — the *workload* half of the Workload /
  ReqGenEngine split: a pure, seeded generator of :class:`KvRequest`
  objects, independent of any memory system.
* :class:`KvEngine` — the *engine* half: applies requests to a keyspace
  layout over the write-back :class:`~repro.memory.cache.MemoryHierarchy`,
  so PCM line writes arise organically from cache writebacks (dirty
  evictions of slot lines) rather than synthesized footprint statistics.
* :func:`generate_kv_trace` / :func:`drive_requests` — materialize a
  :class:`~repro.workloads.trace.Trace` (with phase boundaries) that every
  existing scheme, sweep, gate, and dashboard consumes unchanged.

Determinism: a profile + seed fully determines the request stream, and a
request stream fully determines the engine's stores (value contents are
keyed hashes of ``(profile, seed, key, op sequence number)``), so the
same requests replayed through a fresh engine produce a bit-identical
writeback trace — the property the on-disk suite in
:mod:`repro.workloads.suite` records and verifies.
"""

from __future__ import annotations

import hashlib
import math
import random
from bisect import bisect_left
from dataclasses import dataclass
from itertools import islice
from typing import Callable, Iterable, Iterator

from repro.memory.cache import MemoryHierarchy
from repro.registry import FieldSpec
from repro.workloads.generator import WriteRecord
from repro.workloads.trace import Trace

__all__ = [
    "KV_PROFILES",
    "KV_PARAM_SPECS",
    "KvEngine",
    "KvProfile",
    "KvRequest",
    "KeyspaceLayout",
    "drive_requests",
    "generate_kv_trace",
    "request_stream",
]

#: Request operations, in on-disk op-code order (suite format).
KV_OPS = ("put", "get", "delete")

#: Fixed per-slot record header: 8-byte op sequence number, 4-byte value
#: length, 4-byte key id.  Every put/delete rewrites it — the small-field
#: update pattern DEUCE exploits.
HEADER_BYTES = 16

#: Default scaled-down hierarchy between the "CPU" and PCM (same 8-way
#: shape as Table 1, sizes shrunk so short request streams exercise
#: capacity evictions); the last level's size comes from the profile.
KV_LEVEL_SHAPE = ((4 * 1024, 8), (16 * 1024, 8))


@dataclass(frozen=True)
class KvRequest:
    """One KV operation.

    ``value_size`` is sampled at request-generation time and recorded, so
    a stored request stream replays without consulting any RNG.
    """

    op: str
    key: int
    value_size: int = 0


@dataclass(frozen=True)
class KvProfile:
    """A named KV traffic shape (sizes in bytes, weights relative).

    Attributes
    ----------
    name:
        Registry name (``kv-etc``, ``kv-udb``, ...).
    n_keys:
        Keyspace size.  The populate phase puts every key once; the slot
        region (``n_keys * slot_bytes``) should exceed the last cache
        level so steady-state evictions keep flowing.
    value_bytes:
        Median value size.
    value_sigma:
        Log-normal spread of value sizes (0 = every value exactly
        ``value_bytes``).
    zipf_alpha:
        Steady-state key-popularity skew (0 = uniform; production KV
        traces run ~0.9-1.2).
    get_weight / put_weight / delete_weight:
        Relative operation mix weights in the steady phase.
    cache_kb:
        Last-level cache capacity in KiB (the level whose dirty evictions
        are the PCM write stream).
    """

    name: str
    n_keys: int = 4096
    value_bytes: int = 128
    value_sigma: float = 0.3
    zipf_alpha: float = 0.9
    get_weight: float = 70.0
    put_weight: float = 30.0
    delete_weight: float = 0.0
    cache_kb: int = 64

    def summary(self) -> str:
        return (
            f"{self.n_keys} keys, ~{self.value_bytes}B values, "
            f"get/put/del {self.get_weight:g}/{self.put_weight:g}"
            f"/{self.delete_weight:g}, zipf {self.zipf_alpha:g}"
        )

    def generate_trace(
        self,
        n_writes: int,
        seed: int = 0,
        line_bytes: int = 64,
        abort: Callable[[], bool] | None = None,
        abort_every: int = 1024,
    ) -> Trace:
        """Profile-polymorphic hook used by
        :func:`repro.workloads.trace.generate_trace`."""
        return generate_kv_trace(
            self,
            n_writes,
            seed=seed,
            line_bytes=line_bytes,
            abort=abort,
            abort_every=abort_every,
        )


#: Parameter schema shared by every KV profile registration: the keys a
#: config's ``workload_params`` may override, with types/ranges enforced
#: by ``Registry.validate`` on every decode surface.
KV_PARAM_SPECS: tuple[FieldSpec, ...] = (
    FieldSpec(
        "n_keys", "int", default=4096, minimum=16, maximum=1 << 20,
        doc="keyspace size (populate phase puts each key once)",
    ),
    FieldSpec(
        "value_bytes", "int", default=128, minimum=1, maximum=4096,
        doc="median value size in bytes",
    ),
    FieldSpec(
        "value_sigma", "float", default=0.3, minimum=0.0, maximum=4.0,
        doc="log-normal value-size spread (0 = fixed size)",
    ),
    FieldSpec(
        "zipf_alpha", "float", default=0.9, minimum=0.0, maximum=4.0,
        doc="key-popularity skew (0 = uniform)",
    ),
    FieldSpec(
        "get_weight", "float", default=70.0, minimum=0.0, maximum=1000.0,
        doc="relative GET weight in the steady phase",
    ),
    FieldSpec(
        "put_weight", "float", default=30.0, minimum=0.0, maximum=1000.0,
        doc="relative PUT weight in the steady phase",
    ),
    FieldSpec(
        "delete_weight", "float", default=0.0, minimum=0.0, maximum=1000.0,
        doc="relative DELETE weight in the steady phase",
    ),
    FieldSpec(
        "cache_kb", "int", default=64, minimum=8, maximum=4096,
        doc="last-level cache capacity in KiB",
    ),
)

#: Canned profiles, value sizes and mixes in the style of the published
#: Meta/RocksDB workload characterizations the kv-emulator ships (ETC:
#: large values, read-dominated; UDB: MySQL-backed object store; ZippyDB:
#: small values with deletes; cache: skewed look-aside cache traffic).
KV_PROFILES: dict[str, KvProfile] = {
    profile.name: profile
    for profile in (
        KvProfile(
            "kv-etc",
            n_keys=512,
            value_bytes=358,
            value_sigma=0.5,
            zipf_alpha=1.1,
            get_weight=30.0,
            put_weight=1.0,
        ),
        KvProfile(
            "kv-udb",
            n_keys=1024,
            value_bytes=127,
            value_sigma=0.3,
            zipf_alpha=0.9,
            get_weight=69.0,
            put_weight=31.0,
        ),
        KvProfile(
            "kv-zippydb",
            n_keys=2048,
            value_bytes=43,
            value_sigma=0.2,
            zipf_alpha=0.8,
            get_weight=78.0,
            put_weight=13.0,
            delete_weight=9.0,
        ),
        KvProfile(
            "kv-cache",
            n_keys=768,
            value_bytes=188,
            value_sigma=0.6,
            zipf_alpha=1.2,
            get_weight=67.0,
            put_weight=33.0,
        ),
    )
}


def _align8(n: int) -> int:
    return (n + 7) & ~7


class KeyspaceLayout:
    """Key index -> byte-address mapping over a flat slot region.

    Every key owns a fixed slot of ``HEADER_BYTES + value capacity``
    (rounded to 8 bytes); slots are assigned in a seeded shuffle so
    adjacent key ids do not sit on adjacent lines — neighbouring-line
    traffic comes from the request mix, not from id locality.
    """

    def __init__(self, profile: KvProfile, seed: int) -> None:
        self.value_capacity = max(profile.value_bytes * 2, 8)
        self.slot_bytes = _align8(HEADER_BYTES + self.value_capacity)
        rng = random.Random(f"kv-layout:{profile.name}:{seed}")
        slots = list(range(profile.n_keys))
        rng.shuffle(slots)
        self._slot_of = slots

    def slot_address(self, key: int) -> int:
        """Byte address of the key's slot header."""
        return self._slot_of[key] * self.slot_bytes


def _zipf_cdf(n_keys: int, alpha: float) -> list[float]:
    """Cumulative rank weights for Zipf(alpha) over ``n_keys`` ranks."""
    total = 0.0
    cdf = []
    for rank in range(1, n_keys + 1):
        total += rank ** -alpha
        cdf.append(total)
    return cdf


def request_stream(
    profile: KvProfile, seed: int = 0
) -> Iterator[KvRequest]:
    """The seeded request generator (the pure *workload* half).

    Phase 1 (populate): every key is PUT once, in a shuffled order.
    Phase 2 (steady state, endless): operations drawn from the profile's
    mix weights, keys drawn Zipf(``zipf_alpha``) through a seeded
    rank -> key permutation.
    """
    rng = random.Random(f"kv:{profile.name}:{seed}")
    capacity = max(profile.value_bytes * 2, 8)

    def value_size() -> int:
        if profile.value_sigma <= 0:
            return min(profile.value_bytes, capacity)
        sampled = int(
            round(
                rng.lognormvariate(
                    math.log(profile.value_bytes), profile.value_sigma
                )
            )
        )
        return max(1, min(sampled, capacity))

    keys = list(range(profile.n_keys))
    rng.shuffle(keys)
    for key in keys:
        yield KvRequest("put", key, value_size())

    rank_to_key = list(range(profile.n_keys))
    rng.shuffle(rank_to_key)
    cdf = _zipf_cdf(profile.n_keys, profile.zipf_alpha)
    total = cdf[-1]
    weights = (
        profile.get_weight,
        profile.put_weight,
        profile.delete_weight,
    )
    if sum(weights) <= 0:
        raise ValueError(
            f"KV profile {profile.name!r} has no positive mix weight"
        )
    while True:
        op = rng.choices(("get", "put", "delete"), weights=weights)[0]
        key = rank_to_key[bisect_left(cdf, rng.random() * total)]
        if op == "put":
            yield KvRequest("put", key, value_size())
        elif op == "get":
            yield KvRequest("get", key)
        else:
            yield KvRequest("delete", key)


class KvEngine:
    """The request-application half (the *engine* of the split).

    Maps each request onto loads/stores against the keyspace layout,
    pushes them through a write-back :class:`MemoryHierarchy`, and
    collects the last level's dirty evictions — the organic PCM write
    stream.  All store contents are deterministic functions of
    ``(profile, seed, key, op sequence)``, so identical request sequences
    produce identical writebacks.
    """

    def __init__(
        self,
        profile: KvProfile,
        seed: int = 0,
        line_bytes: int = 64,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.line_bytes = line_bytes
        self.layout = KeyspaceLayout(profile, seed)
        self.records: list[WriteRecord] = []
        self.backing: dict[int, bytes] = {}
        levels = list(KV_LEVEL_SHAPE) + [(profile.cache_kb * 1024, 8)]
        self.hierarchy = MemoryHierarchy(
            levels,
            self.backing,
            writeback_sink=lambda addr, data: self.records.append(
                WriteRecord(addr, data)
            ),
            line_bytes=line_bytes,
        )
        self._value_seed = f"kv-value:{profile.name}:{seed}".encode()
        self._live: dict[int, int] = {}  # key -> stored value size
        self._op_seq = 0

    # -- deterministic store contents ---------------------------------------

    def _value_bytes(self, key: int, seq: int, size: int) -> bytes:
        """``size`` pseudo-random bytes determined by (profile, seed, key, seq)."""
        out = bytearray()
        counter = 0
        while len(out) < size:
            out += hashlib.blake2b(
                b"%d:%d:%d" % (key, seq, counter),
                key=self._value_seed[:64],
                digest_size=64,
            ).digest()
            counter += 1
        return bytes(out[:size])

    def _store_span(self, address: int, data: bytes) -> None:
        """Store ``data`` at byte ``address``, split at line boundaries."""
        offset = 0
        while offset < len(data):
            line_offset = (address + offset) % self.line_bytes
            take = min(self.line_bytes - line_offset, len(data) - offset)
            self.hierarchy.store(address + offset, data[offset:offset + take])
            offset += take

    def _load_span(self, address: int, length: int) -> None:
        """Touch every line covering ``[address, address + length)``."""
        first = address // self.line_bytes
        last = (address + max(length, 1) - 1) // self.line_bytes
        for line in range(first, last + 1):
            self.hierarchy.load(line * self.line_bytes)

    # -- request application -------------------------------------------------

    def apply(self, request: KvRequest) -> None:
        """Apply one request (put/get/delete) to the hierarchy."""
        seq = self._op_seq
        self._op_seq += 1
        base = self.layout.slot_address(request.key)
        if request.op == "put":
            size = min(request.value_size, self.layout.value_capacity)
            header = (
                seq.to_bytes(8, "little")
                + size.to_bytes(4, "little")
                + (request.key & 0xFFFFFFFF).to_bytes(4, "little")
            )
            self._store_span(base, header)
            self._store_span(
                base + HEADER_BYTES,
                self._value_bytes(request.key, seq, size),
            )
            self._live[request.key] = size
        elif request.op == "get":
            size = self._live.get(request.key, 0)
            self._load_span(base, HEADER_BYTES + size)
        elif request.op == "delete":
            tombstone = (
                seq.to_bytes(8, "little")
                + (0).to_bytes(4, "little")
                + (request.key & 0xFFFFFFFF).to_bytes(4, "little")
            )
            self._store_span(base, tombstone)
            self._live.pop(request.key, None)
        else:
            raise ValueError(f"unknown KV op {request.op!r}")

    def flush(self) -> int:
        """Flush every cache level outward (the power-down drain)."""
        return self.hierarchy.flush_all()

    def cache_stats(self):
        """Per-level :class:`~repro.memory.cache.CacheStats`, first level first."""
        return [level.stats for level in self.hierarchy.levels]


def drive_requests(
    profile: KvProfile,
    seed: int,
    line_bytes: int,
    requests: Iterable[KvRequest],
    n_writes: int,
    *,
    abort: Callable[[], bool] | None = None,
    abort_every: int = 1024,
    collect: list[KvRequest] | None = None,
) -> tuple[Trace, KvEngine]:
    """Apply requests through a fresh engine until ``n_writes`` writebacks.

    The shared core of live generation and suite replay: both paths apply
    the same request sequence to an identically-seeded engine, so both
    produce the same trace.  If the request iterator is exhausted before
    enough writebacks accumulated, the hierarchy is flushed (deterministic
    drain of the dirty lines); if the trace is *still* short the profile
    cannot sustain the requested length and a :class:`ValueError` explains
    which knob to turn.  ``collect`` receives every applied request (the
    suite recorder); ``abort`` is polled every ``abort_every`` requests.
    """
    engine = KvEngine(profile, seed, line_bytes)
    records = engine.records
    populate_end: int | None = None
    applied = 0
    for request in requests:
        if (
            abort is not None
            and applied % abort_every == 0
            and abort()
        ):
            from repro.obs.instruments import RunAborted

            raise RunAborted(
                f"KV trace generation aborted after {applied} requests "
                f"({len(records)}/{n_writes} writebacks)"
            )
        engine.apply(request)
        if collect is not None:
            collect.append(request)
        applied += 1
        if populate_end is None and applied == profile.n_keys:
            populate_end = min(len(records), n_writes)
        if len(records) >= n_writes:
            break
    else:
        engine.flush()
    if populate_end is None:
        populate_end = min(len(records), n_writes)
    if len(records) < n_writes:
        raise ValueError(
            f"KV profile {profile.name!r} produced only {len(records)} "
            f"writebacks for n_writes={n_writes}; raise n_keys/put_weight "
            "or lower cache_kb so more dirty lines evict"
        )
    del records[n_writes:]
    touched = set(engine.backing) | {r.address for r in records}
    zeros = bytes(line_bytes)
    trace = Trace(
        profile_name=profile.name,
        seed=seed,
        line_bytes=line_bytes,
        initial={addr: zeros for addr in sorted(touched)},
        records=records,
        phases=(("populate", 0), ("steady", populate_end)),
    )
    return trace, engine


def generate_kv_trace(
    profile: KvProfile,
    n_writes: int,
    seed: int = 0,
    line_bytes: int = 64,
    abort: Callable[[], bool] | None = None,
    abort_every: int = 1024,
    collect: list[KvRequest] | None = None,
) -> Trace:
    """Materialize ``n_writes`` organic writebacks for a KV profile.

    Generates the seeded request stream and drives it through the cache
    hierarchy.  The request budget is bounded (populate plus a generous
    steady-state allowance) so a pathological mix fails fast instead of
    spinning forever.
    """
    max_requests = profile.n_keys + 64 * n_writes + 1000
    stream = islice(request_stream(profile, seed), max_requests)
    trace, _engine = drive_requests(
        profile,
        seed,
        line_bytes,
        stream,
        n_writes,
        abort=abort,
        abort_every=abort_every,
        collect=collect,
    )
    return trace
