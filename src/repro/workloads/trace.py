"""Trace containers and file I/O.

A :class:`Trace` is a materialized writeback stream: the initial contents of
every working-set line plus an ordered list of :class:`WriteRecord`.  Traces
can be saved to a compact binary format so expensive sweeps reuse identical
inputs across schemes and runs.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.workloads.generator import TraceGenerator, WriteRecord
from repro.workloads.profiles import WorkloadProfile, get_profile

_MAGIC = b"DEUCETRC"
_VERSION = 1


@dataclass
class Trace:
    """A reproducible writeback trace for one workload.

    Attributes
    ----------
    profile_name:
        Workload the trace was generated from.
    seed:
        Generator seed.
    line_bytes:
        Line size of every record.
    initial:
        address -> pristine line contents, used to install lines.
    records:
        Ordered writebacks.
    """

    profile_name: str
    seed: int
    line_bytes: int
    initial: dict[int, bytes]
    records: list[WriteRecord] = field(default_factory=list)

    @property
    def n_writes(self) -> int:
        return len(self.records)

    def addresses(self) -> list[int]:
        return sorted(self.initial)

    # -- serialization -------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace to a binary file."""
        header = json.dumps(
            {
                "version": _VERSION,
                "profile": self.profile_name,
                "seed": self.seed,
                "line_bytes": self.line_bytes,
                "n_initial": len(self.initial),
                "n_records": len(self.records),
            }
        ).encode()
        with open(path, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(len(header).to_bytes(4, "little"))
            fh.write(header)
            for addr in sorted(self.initial):
                fh.write(addr.to_bytes(8, "little"))
                fh.write(self.initial[addr])
            for rec in self.records:
                fh.write(rec.address.to_bytes(8, "little"))
                fh.write(rec.data)

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        with open(path, "rb") as fh:
            data = fh.read()
        buf = io.BytesIO(data)
        if buf.read(8) != _MAGIC:
            raise ValueError(f"{path}: not a DEUCE trace file")
        header_len = int.from_bytes(buf.read(4), "little")
        header = json.loads(buf.read(header_len))
        if header["version"] != _VERSION:
            raise ValueError(f"unsupported trace version {header['version']}")
        line_bytes = header["line_bytes"]
        initial = {}
        for _ in range(header["n_initial"]):
            addr = int.from_bytes(buf.read(8), "little")
            initial[addr] = buf.read(line_bytes)
        records = []
        for _ in range(header["n_records"]):
            addr = int.from_bytes(buf.read(8), "little")
            records.append(WriteRecord(addr, buf.read(line_bytes)))
        return cls(
            profile_name=header["profile"],
            seed=header["seed"],
            line_bytes=line_bytes,
            initial=initial,
            records=records,
        )


def generate_trace(
    profile: WorkloadProfile | str,
    n_writes: int,
    seed: int = 0,
    line_bytes: int = 64,
) -> Trace:
    """Materialize a trace of ``n_writes`` writebacks for a workload."""
    if isinstance(profile, str):
        profile = get_profile(profile)
    gen = TraceGenerator(profile, seed=seed, line_bytes=line_bytes)
    trace = Trace(
        profile_name=profile.name,
        seed=seed,
        line_bytes=line_bytes,
        initial=gen.initial_lines(),
    )
    trace.records = list(gen.writes(n_writes))
    return trace
