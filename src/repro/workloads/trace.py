"""Trace containers and file I/O.

A :class:`Trace` is a materialized writeback stream: the initial contents of
every working-set line plus an ordered list of :class:`WriteRecord`.  Traces
can be saved to a compact binary format so expensive sweeps reuse identical
inputs across schemes and runs.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.workloads.generator import TraceGenerator, WriteRecord
from repro.workloads.profiles import WorkloadProfile, get_profile


class _LazyRecords(Sequence):
    """Record list backed by (addresses, data) arrays, built on demand.

    Shared-memory traces attach to another process's buffers; materializing
    ``n_writes`` :class:`WriteRecord` objects up front would copy everything
    the shared mapping exists to avoid.  This view constructs records only
    when the serial loop actually asks for them; the chunked loop reads the
    arrays directly and never touches it.
    """

    def __init__(self, addresses: np.ndarray, data: np.ndarray) -> None:
        self._addresses = addresses
        self._data = data

    def __len__(self) -> int:
        return int(self._addresses.shape[0])

    def __getitem__(self, index):
        if isinstance(index, slice):
            rng = range(*index.indices(len(self)))
            return [
                WriteRecord(int(self._addresses[i]), self._data[i].tobytes())
                for i in rng
            ]
        return WriteRecord(
            int(self._addresses[index]), self._data[index].tobytes()
        )

_MAGIC = b"DEUCETRC"
_VERSION = 1


@dataclass
class Trace:
    """A reproducible writeback trace for one workload.

    Attributes
    ----------
    profile_name:
        Workload the trace was generated from.
    seed:
        Generator seed.
    line_bytes:
        Line size of every record.
    initial:
        address -> pristine line contents, used to install lines.
    records:
        Ordered writebacks.
    phases:
        ``(name, first write index)`` pairs in stream order, for traces
        with phase structure (KV populate -> steady state).  Empty for
        the statistical Table 2 traces; each phase runs until the next
        phase's start (the last until ``n_writes``).
    """

    profile_name: str
    seed: int
    line_bytes: int
    initial: dict[int, bytes]
    records: list[WriteRecord] | _LazyRecords = field(default_factory=list)
    phases: tuple[tuple[str, int], ...] = ()
    _arrays: tuple | None = field(
        default=None, repr=False, compare=False
    )
    _init_arrays: tuple | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_writes(self) -> int:
        return len(self.records)

    def addresses(self) -> list[int]:
        return sorted(self.initial)

    # -- array form ----------------------------------------------------------

    def write_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The writeback stream as ``(addresses, data)`` arrays, cached.

        ``addresses`` is ``(n,)`` int64 and ``data`` ``(n, line_bytes)``
        uint8, in trace order — the chunked write path slices these instead
        of iterating :class:`WriteRecord` objects.
        """
        if self._arrays is None:
            n = len(self.records)
            addresses = np.empty(n, dtype=np.int64)
            data = np.empty((n, self.line_bytes), dtype=np.uint8)
            for i, rec in enumerate(self.records):
                addresses[i] = rec.address
                data[i] = np.frombuffer(rec.data, dtype=np.uint8)
            self._arrays = (addresses, data)
        return self._arrays

    def initial_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``initial`` as ``(addresses, data)`` arrays in address order.

        Cached; feeds the batched install path (one wide pad call for the
        whole working set) and the shared-memory trace publisher.
        """
        if self._init_arrays is None:
            addrs = sorted(self.initial)
            init_addresses = np.asarray(addrs, dtype=np.int64)
            if addrs:
                init_data = np.frombuffer(
                    b"".join(self.initial[a] for a in addrs), dtype=np.uint8
                ).reshape(len(addrs), self.line_bytes)
            else:
                init_data = np.empty((0, self.line_bytes), dtype=np.uint8)
            self._init_arrays = (init_addresses, init_data)
        return self._init_arrays

    @classmethod
    def from_arrays(
        cls,
        profile_name: str,
        seed: int,
        line_bytes: int,
        init_addresses: np.ndarray,
        init_data: np.ndarray,
        addresses: np.ndarray,
        data: np.ndarray,
        phases: tuple[tuple[str, int], ...] = (),
    ) -> "Trace":
        """Build a trace view over preexisting arrays without copying.

        Used by the shared-memory sweep path: the arrays may live in a
        ``multiprocessing.shared_memory`` buffer owned by another process.
        ``records`` stays lazy, so nothing is materialized unless the
        serial loop iterates it.
        """
        initial = {
            int(init_addresses[i]): init_data[i].tobytes()
            for i in range(init_addresses.shape[0])
        }
        return cls(
            profile_name=profile_name,
            seed=seed,
            line_bytes=line_bytes,
            initial=initial,
            records=_LazyRecords(addresses, data),
            phases=tuple((str(n), int(s)) for n, s in phases),
            _arrays=(addresses, data),
            _init_arrays=(init_addresses, init_data),
        )

    # -- serialization -------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace to a binary file."""
        meta: dict[str, object] = {
            "version": _VERSION,
            "profile": self.profile_name,
            "seed": self.seed,
            "line_bytes": self.line_bytes,
            "n_initial": len(self.initial),
            "n_records": len(self.records),
        }
        if self.phases:
            # Optional key: files without it load with phases=() and old
            # readers ignore it, so the format version stays 1.
            meta["phases"] = [list(p) for p in self.phases]
        header = json.dumps(meta).encode()
        with open(path, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(len(header).to_bytes(4, "little"))
            fh.write(header)
            for addr in sorted(self.initial):
                fh.write(addr.to_bytes(8, "little"))
                fh.write(self.initial[addr])
            for rec in self.records:
                fh.write(rec.address.to_bytes(8, "little"))
                fh.write(rec.data)

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        with open(path, "rb") as fh:
            data = fh.read()
        buf = io.BytesIO(data)
        if buf.read(8) != _MAGIC:
            raise ValueError(f"{path}: not a DEUCE trace file")
        header_len = int.from_bytes(buf.read(4), "little")
        header = json.loads(buf.read(header_len))
        if header["version"] != _VERSION:
            raise ValueError(f"unsupported trace version {header['version']}")
        line_bytes = header["line_bytes"]
        initial = {}
        for _ in range(header["n_initial"]):
            addr = int.from_bytes(buf.read(8), "little")
            initial[addr] = buf.read(line_bytes)
        records = []
        for _ in range(header["n_records"]):
            addr = int.from_bytes(buf.read(8), "little")
            records.append(WriteRecord(addr, buf.read(line_bytes)))
        return cls(
            profile_name=header["profile"],
            seed=header["seed"],
            line_bytes=line_bytes,
            initial=initial,
            records=records,
            phases=tuple(
                (str(n), int(s)) for n, s in header.get("phases", ())
            ),
        )


def generate_trace(
    profile: WorkloadProfile | str,
    n_writes: int,
    seed: int = 0,
    line_bytes: int = 64,
    abort=None,
    abort_every: int = 1024,
    params: dict | None = None,
) -> Trace:
    """Materialize a trace of ``n_writes`` writebacks for a workload.

    ``abort`` is an optional zero-argument callable polled every
    ``abort_every`` generated writes; when it returns True, generation
    stops and :class:`~repro.obs.instruments.RunAborted` is raised.  Large
    traces take long enough to synthesize that a job deadline or cancel
    must be able to interrupt this phase too, not just the write loop.

    ``params`` are workload parameters forwarded to the registry factory
    when ``profile`` is a name (a config's ``workload_params``).  Profiles
    that synthesize their own stream (KV request engines) are dispatched
    through their ``generate_trace`` method; everything else runs the
    statistical :class:`TraceGenerator`.
    """
    if isinstance(profile, str):
        profile = get_profile(profile, params)
    build = getattr(profile, "generate_trace", None)
    if build is not None:
        return build(
            n_writes,
            seed=seed,
            line_bytes=line_bytes,
            abort=abort,
            abort_every=abort_every,
        )
    gen = TraceGenerator(profile, seed=seed, line_bytes=line_bytes)
    trace = Trace(
        profile_name=profile.name,
        seed=seed,
        line_bytes=line_bytes,
        initial=gen.initial_lines(),
    )
    if abort is None:
        trace.records = list(gen.writes(n_writes))
        return trace
    from repro.obs.instruments import RunAborted

    records: list[WriteRecord] = []
    append = records.append
    next_write = gen.next_write
    for i in range(n_writes):
        if i % abort_every == 0 and abort():
            raise RunAborted(
                f"trace generation aborted at write {i}/{n_writes}"
            )
        append(next_write())
    trace.records = records
    return trace
