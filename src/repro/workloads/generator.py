"""Synthetic writeback-trace generator.

Turns a :class:`~repro.workloads.profiles.WorkloadProfile` into a
deterministic stream of (line address, new line contents) writeback records
with the statistical structure the paper's analysis rests on:

* line-level locality — a Zipf-popular working set of lines;
* a persistent per-line *word footprint* — writes to a line keep touching
  the same small set of 2-byte word positions, with slow drift and
  occasional bursts;
* cross-line alignment of hot words — footprints are drawn from one global
  word-popularity ranking, so the same positions are hot in every line
  (what makes Figure 12's per-bit-position skew visible after aggregating
  over lines);
* within-word value behaviour — bit flips decay geometrically from LSB to
  MSB, mimicking counters and small-delta updates.

The generator is also the keeper of ground truth: it holds every line's
current plaintext, so schemes under test can be checked byte-for-byte.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass

from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class WriteRecord:
    """One writeback: the full new contents of one line."""

    address: int
    data: bytes


def _zipf_cumulative(n: int, alpha: float) -> list[float]:
    """Cumulative Zipf weights for ranks 1..n (unnormalized prefix sums)."""
    total = 0.0
    cum = []
    for rank in range(1, n + 1):
        total += rank ** -alpha
        cum.append(total)
    return cum


def _bit_probabilities(mean_bits: float, decay: float, width: int) -> list[float]:
    """Per-bit flip probabilities p_j = c * decay^j with sum ~= mean_bits.

    Probabilities are capped at 0.99; the scale ``c`` is found by bisection
    so the capped sum hits the requested mean (or the cap's maximum).
    """
    if not 0 < decay <= 1:
        raise ValueError("decay must be in (0, 1]")
    if mean_bits <= 0:
        raise ValueError("mean_bits must be positive")
    cap = 0.99
    mean_bits = min(mean_bits, cap * width)

    def capped_sum(c: float) -> float:
        return sum(min(cap, c * decay**j) for j in range(width))

    lo, hi = 0.0, 1.0
    while capped_sum(hi) < mean_bits and hi < 1e9:
        hi *= 2
    for _ in range(60):
        mid = (lo + hi) / 2
        if capped_sum(mid) < mean_bits:
            lo = mid
        else:
            hi = mid
    return [min(cap, hi * decay**j) for j in range(width)]


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler (fine for the small means used here)."""
    if lam <= 0:
        return 0
    limit = pow(2.718281828459045, -lam)
    k = 0
    p = 1.0
    while True:
        p *= rng.random()
        if p <= limit:
            return k
        k += 1


class TraceGenerator:
    """Deterministic writeback stream for one workload profile.

    Parameters
    ----------
    profile:
        The workload model.
    seed:
        RNG seed; identical (profile, seed) pairs produce identical traces.
    line_bytes / word_bytes:
        Geometry; the paper's 64-byte lines and 2-byte words.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        seed: int = 0,
        line_bytes: int = 64,
        word_bytes: int = 2,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.line_bytes = line_bytes
        self.word_bytes = word_bytes
        self.n_words = line_bytes // word_bytes
        # str seeding is deterministic across interpreter runs (unlike
        # tuple/str __hash__, which PYTHONHASHSEED randomizes).
        self._rng = random.Random(f"{profile.name}:{seed}")

        # Line popularity: shuffled identity so hot lines are scattered in
        # the address space, Zipf-weighted by rank.
        self._line_order = list(range(profile.working_set_lines))
        self._rng.shuffle(self._line_order)
        self._line_cum = _zipf_cumulative(
            profile.working_set_lines, profile.zipf_alpha
        )

        # Global word-position popularity (footprints sample from this).
        self._word_order = list(range(self.n_words))
        self._rng.shuffle(self._word_order)
        self._word_cum = _zipf_cumulative(self.n_words, profile.word_skew)
        self._word_rank = {w: r for r, w in enumerate(self._word_order)}

        # Per-bit flip probabilities inside a modified word: a full-word
        # profile, plus a low-byte-only profile for small-delta updates
        # (counters, flags) that leave the word's upper byte(s) untouched.
        self._bit_probs = _bit_probabilities(
            profile.bits_per_word_mean, profile.bit_decay, 8 * word_bytes
        )
        self._low_byte_probs = _bit_probabilities(
            min(profile.bits_per_word_mean, 4.0), profile.bit_decay, 8
        )

        # 16-byte AES-block geometry for block-affinity footprint sampling.
        self._words_per_block = max(1, 16 // word_bytes)
        self._n_blocks = max(1, self.n_words // self._words_per_block)
        self._home_blocks: dict[int, set[int]] = {}

        # Ground-truth line contents and per-line footprints.
        self._initial: dict[int, bytes] = {
            addr: bytes(
                self._rng.randrange(256) for _ in range(line_bytes)
            )
            for addr in range(profile.working_set_lines)
        }
        self._lines: dict[int, bytearray] = {
            addr: bytearray(data) for addr, data in self._initial.items()
        }
        self._footprints: dict[int, list[int]] = {}
        self.writes_generated = 0

    # -- public API -----------------------------------------------------------

    def initial_lines(self) -> dict[int, bytes]:
        """Pristine contents of every working-set line (for install)."""
        return dict(self._initial)

    def current_line(self, address: int) -> bytes:
        """Ground-truth plaintext of a line right now."""
        return bytes(self._lines[address])

    def next_write(self) -> WriteRecord:
        """Generate the next writeback record."""
        rng = self._rng
        address = self._pick_line()
        line = self._lines[address]

        if rng.random() < self.profile.dense_write_prob:
            words: set[int] = set(range(self.n_words))
        else:
            words = self._pick_footprint_words(address)
            if self.profile.burst_prob and rng.random() < self.profile.burst_prob:
                for _ in range(self.profile.burst_words):
                    words.add(rng.randrange(self.n_words))

        for w in words:
            self._mutate_word(line, w)
        self.writes_generated += 1
        return WriteRecord(address, bytes(line))

    def writes(self, n: int):
        """Yield ``n`` writeback records."""
        for _ in range(n):
            yield self.next_write()

    # -- internals ----------------------------------------------------------------

    def _pick_line(self) -> int:
        u = self._rng.random() * self._line_cum[-1]
        rank = bisect_right(self._line_cum, u)
        return self._line_order[min(rank, len(self._line_order) - 1)]

    def _pick_global_word(self) -> int:
        u = self._rng.random() * self._word_cum[-1]
        rank = bisect_right(self._word_cum, u)
        return self._word_order[min(rank, self.n_words - 1)]

    def _line_home_blocks(self, address: int) -> set[int]:
        """The line's preferred AES blocks (chosen by global popularity)."""
        home = self._home_blocks.get(address)
        if home is None:
            home = set()
            want = min(self.profile.home_blocks, self._n_blocks)
            while len(home) < want:
                home.add(self._pick_global_word() // self._words_per_block)
            self._home_blocks[address] = home
        return home

    def _pick_footprint_candidate(self, address: int) -> int:
        """A footprint word draw, honouring the profile's block affinity."""
        word = self._pick_global_word()
        if (
            self.profile.block_affinity <= 0.0
            or self._rng.random() >= self.profile.block_affinity
        ):
            return word
        home = self._line_home_blocks(address)
        for _ in range(16):
            if word // self._words_per_block in home:
                return word
            word = self._pick_global_word()
        return word

    def _footprint(self, address: int) -> list[int]:
        fp = self._footprints.get(address)
        if fp is None:
            size = max(
                1,
                min(
                    self.n_words,
                    round(
                        self._rng.gauss(
                            self.profile.footprint_mean,
                            self.profile.footprint_mean / 4,
                        )
                    ),
                ),
            )
            chosen: set[int] = set()
            while len(chosen) < size:
                chosen.add(self._pick_footprint_candidate(address))
            fp = sorted(chosen, key=self._footprint_sort_key(address))
            self._footprints[address] = fp
        return fp

    def _footprint_sort_key(self, address: int):
        """Footprint ordering: hottest-first, home-block words ahead.

        The front of the footprint is what front-biased per-write picks
        favour, so putting home-block words first keeps individual writes
        clustered within few AES blocks even when a large footprint
        overflows its home blocks.
        """
        if self.profile.block_affinity <= 0.0:
            return self._word_rank.__getitem__
        home = self._line_home_blocks(address)
        return lambda w: (
            w // self._words_per_block not in home,
            self._word_rank[w],
        )

    def _pick_footprint_words(self, address: int) -> set[int]:
        rng = self._rng
        fp = self._footprint(address)
        if self.profile.footprint_churn and rng.random() < self.profile.footprint_churn:
            self._churn_footprint(address, fp)
        k = min(len(fp), 1 + _poisson(rng, self.profile.words_per_write_mean - 1))
        words: set[int] = set()
        while len(words) < k:
            # Front-biased pick: hot footprint entries get modified most.
            idx = int(len(fp) * rng.random() ** 2)
            words.add(fp[min(idx, len(fp) - 1)])
        return words

    def _churn_footprint(self, address: int, fp: list[int]) -> None:
        """Drift: replace one footprint word with a fresh draw."""
        rng = self._rng
        for _ in range(8):
            candidate = self._pick_footprint_candidate(address)
            if candidate not in fp:
                fp[rng.randrange(len(fp))] = candidate
                fp.sort(key=self._footprint_sort_key(address))
                return

    def _mutate_word(self, line: bytearray, w: int) -> None:
        rng = self._rng
        probs = (
            self._low_byte_probs
            if rng.random() < self.profile.single_byte_prob
            else self._bit_probs
        )
        delta = 0
        for _ in range(8):
            for j, pj in enumerate(probs):
                if rng.random() < pj:
                    delta |= 1 << j
            if delta:
                break
        else:
            delta = 1
        off = w * self.word_bytes
        width = self.word_bytes
        value = int.from_bytes(line[off: off + width], "little") ^ delta
        line[off: off + width] = value.to_bytes(width, "little")
