"""SPEC2006-like workload profiles (Table 2 + calibrated write behaviour).

The paper evaluates 12 SPEC2006 benchmarks with at least 1 writeback per
thousand instructions, run in 8-copy rate mode behind a 64MB L4.  We cannot
replay those traces, so each benchmark is modelled as a parameterized
writeback stream whose *write-content statistics* are calibrated to the
paper's reported behaviour:

* Table 2's L4 read-miss MPKI and writeback WBPKI are taken verbatim (they
  drive the performance model's request rates).
* The within-line write behaviour — how many 2-byte words a writeback
  touches, how stable that footprint is across writes, how many bits flip
  inside a touched word, and how skewed flips are toward low-order bits —
  is tuned so that the headline figures reproduce: unencrypted DCW ~12%,
  FNW ~10.5%, DEUCE ~24% with libq/mcf/omnetpp sparse and Gems/soplex
  dense, and Figure 12's per-bit-position skew (~27x for libquantum, ~6x
  for mcf).

The knobs are documented on :class:`WorkloadProfile`; the calibrated values
live in :data:`PROFILES`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical model of one benchmark's writeback stream.

    Attributes
    ----------
    name:
        Benchmark name as in Table 2.
    read_mpki:
        L4 read misses per thousand instructions (Table 2).
    wbpki:
        L4 writebacks per thousand instructions (Table 2).
    working_set_lines:
        Distinct lines in the write working set the generator cycles over.
    zipf_alpha:
        Skew of line popularity (0 = uniform; higher concentrates writes
        on a few hot lines).
    footprint_mean:
        Average size (in words) of a line's persistent write footprint —
        the word positions that writes to this line keep touching.
    words_per_write_mean:
        Average number of footprint words actually modified by one
        writeback.
    bits_per_word_mean:
        Average bit flips inside a modified 16-bit word.
    bit_decay:
        Geometric decay of per-bit flip probability from LSB to MSB inside
        a word; small values mimic counters (LSBs flip almost always),
        1.0 spreads flips evenly.
    word_skew:
        Zipf skew of the *global* word-position popularity that footprints
        are drawn from.  High skew means the same word positions are hot
        in every line (drives Figure 12's cross-line bit-position skew).
    dense_write_prob:
        Probability that a writeback modifies every word of the line
        (streaming/dense writers like Gems).
    footprint_churn:
        Per-write probability that the footprint drifts by one word.
    burst_prob:
        Probability of a transient burst write touching extra words
        outside the footprint (drives epoch-interval sensitivity, wrf and
        milc in Figure 9).
    burst_words:
        Number of extra words such a burst touches.
    block_affinity:
        Probability that a footprint word is drawn from the line's "home"
        AES blocks rather than anywhere in the line.  Real writebacks
        cluster within 16-byte blocks (structs, partial arrays); this is
        what makes Block-Level Encryption's ~33% average (Figure 18)
        possible — with fully scattered footprints BLE would always
        re-encrypt all four blocks.
    home_blocks:
        Number of preferred 16-byte blocks per line when
        ``block_affinity`` > 0.
    single_byte_prob:
        Probability that a modified word's delta is confined to its low
        byte (small integers, flags).  This is what gives byte-granularity
        DEUCE tracking its edge over 2-byte tracking in Figure 8.
    """

    name: str
    read_mpki: float
    wbpki: float
    working_set_lines: int = 2048
    zipf_alpha: float = 0.8
    footprint_mean: float = 8.0
    words_per_write_mean: float = 4.0
    bits_per_word_mean: float = 8.0
    bit_decay: float = 0.95
    word_skew: float = 0.8
    dense_write_prob: float = 0.0
    footprint_churn: float = 0.01
    burst_prob: float = 0.0
    burst_words: int = 0
    block_affinity: float = 0.0
    home_blocks: int = 2
    single_byte_prob: float = 0.25


# Calibrated profiles.  MPKI/WBPKI columns are Table 2 verbatim; the write
# behaviour columns were tuned against the paper's per-figure targets (see
# PAPER_TARGETS below and benchmarks/).
PROFILES: dict[str, WorkloadProfile] = {
    p.name: p
    for p in (
        WorkloadProfile(
            name="libq",
            read_mpki=22.9,
            wbpki=9.78,
            zipf_alpha=0.5,
            footprint_mean=4.0,
            words_per_write_mean=2.0,
            bits_per_word_mean=10.0,
            bit_decay=0.88,
            word_skew=2.4,
            footprint_churn=0.001,
            block_affinity=0.95,
            home_blocks=1,
        ),
        WorkloadProfile(
            name="mcf",
            read_mpki=16.2,
            wbpki=8.78,
            zipf_alpha=0.8,
            footprint_mean=8.0,
            words_per_write_mean=5.0,
            bits_per_word_mean=8.5,
            bit_decay=0.98,
            word_skew=0.9,
            footprint_churn=0.008,
            block_affinity=0.90,
            home_blocks=2,
        ),
        WorkloadProfile(
            name="lbm",
            read_mpki=14.6,
            wbpki=7.25,
            zipf_alpha=0.7,
            footprint_mean=18.0,
            words_per_write_mean=11.0,
            bits_per_word_mean=8.5,
            bit_decay=0.97,
            word_skew=0.6,
            footprint_churn=0.015,
            block_affinity=0.93,
            home_blocks=2,
        ),
        WorkloadProfile(
            name="Gems",
            read_mpki=14.4,
            wbpki=7.14,
            zipf_alpha=0.6,
            footprint_mean=32.0,
            words_per_write_mean=32.0,
            bits_per_word_mean=2.0,
            bit_decay=0.98,
            word_skew=0.2,
            dense_write_prob=1.0,
        ),
        WorkloadProfile(
            name="milc",
            read_mpki=19.6,
            wbpki=6.80,
            zipf_alpha=0.7,
            footprint_mean=16.0,
            words_per_write_mean=8.0,
            bits_per_word_mean=8.5,
            bit_decay=0.96,
            word_skew=0.8,
            footprint_churn=0.01,
            burst_prob=0.10,
            burst_words=12,
            block_affinity=0.93,
            home_blocks=2,
        ),
        WorkloadProfile(
            name="omnetpp",
            read_mpki=10.8,
            wbpki=4.71,
            zipf_alpha=0.9,
            footprint_mean=7.0,
            words_per_write_mean=4.0,
            bits_per_word_mean=9.0,
            bit_decay=0.92,
            word_skew=1.2,
            footprint_churn=0.003,
            block_affinity=0.92,
            home_blocks=1,
        ),
        WorkloadProfile(
            name="leslie3d",
            read_mpki=12.8,
            wbpki=4.38,
            zipf_alpha=0.7,
            footprint_mean=20.0,
            words_per_write_mean=11.0,
            bits_per_word_mean=8.5,
            bit_decay=0.97,
            word_skew=0.6,
            footprint_churn=0.015,
            block_affinity=0.93,
            home_blocks=2,
        ),
        WorkloadProfile(
            name="soplex",
            read_mpki=25.5,
            wbpki=3.97,
            zipf_alpha=0.7,
            footprint_mean=28.0,
            words_per_write_mean=14.0,
            bits_per_word_mean=2.2,
            bit_decay=0.98,
            word_skew=0.3,
            dense_write_prob=0.8,
            footprint_churn=0.02,
        ),
        WorkloadProfile(
            name="zeusmp",
            read_mpki=4.65,
            wbpki=1.97,
            zipf_alpha=0.7,
            footprint_mean=20.0,
            words_per_write_mean=12.0,
            bits_per_word_mean=8.5,
            bit_decay=0.97,
            word_skew=0.6,
            footprint_churn=0.015,
            block_affinity=0.93,
            home_blocks=2,
        ),
        WorkloadProfile(
            name="wrf",
            read_mpki=3.85,
            wbpki=1.67,
            zipf_alpha=0.7,
            footprint_mean=12.0,
            words_per_write_mean=8.0,
            bits_per_word_mean=8.5,
            bit_decay=0.97,
            word_skew=0.7,
            footprint_churn=0.015,
            burst_prob=0.15,
            burst_words=14,
            block_affinity=0.93,
            home_blocks=2,
        ),
        WorkloadProfile(
            name="xalanc",
            read_mpki=1.85,
            wbpki=1.61,
            zipf_alpha=0.9,
            footprint_mean=14.0,
            words_per_write_mean=9.0,
            bits_per_word_mean=8.5,
            bit_decay=0.96,
            word_skew=0.8,
            footprint_churn=0.008,
            block_affinity=0.93,
            home_blocks=2,
        ),
        WorkloadProfile(
            name="astar",
            read_mpki=1.84,
            wbpki=1.29,
            zipf_alpha=0.8,
            footprint_mean=17.0,
            words_per_write_mean=10.0,
            bits_per_word_mean=8.5,
            bit_decay=0.95,
            word_skew=0.8,
            footprint_churn=0.015,
            block_affinity=0.93,
            home_blocks=2,
        ),
    )
}

#: Presentation order used throughout the paper's figures.
WORKLOAD_NAMES = tuple(PROFILES)


#: Paper-reported targets this model is calibrated against (percent modified
#: bits per write, and Figure 12's max-over-mean bit-position skew).  Values
#: are approximate readings of the figures; headline averages are exact from
#: the text.
PAPER_TARGETS = {
    "avg_dcw_noencr_pct": 12.2,
    "avg_fnw_noencr_pct": 10.5,
    "avg_dcw_encr_pct": 50.0,
    "avg_fnw_encr_pct": 42.7,
    "avg_deuce_pct": 23.7,
    "avg_dyndeuce_pct": 22.0,
    "avg_deuce_fnw_pct": 20.3,
    "avg_ble_pct": 33.0,
    "avg_ble_deuce_pct": 19.9,
    "deuce_word1_pct": 21.4,
    "deuce_word2_pct": 23.7,
    "deuce_word4_pct": 26.8,
    "deuce_word8_pct": 32.2,
    "deuce_epoch8_pct": 24.8,
    "deuce_epoch16_pct": 24.0,
    "deuce_epoch32_pct": 23.7,
    "skew_libq": 27.0,
    "skew_mcf": 6.0,
    "lifetime_fnw": 1.14,
    "lifetime_deuce": 1.11,
    "lifetime_deuce_hwl": 2.0,
    "slots_encr": 4.0,
    "slots_deuce": 2.64,
    "slots_noencr": 1.92,
    "speedup_deuce": 1.27,
    "speedup_noencr_fnw": 1.40,
}


def get_profile(name: str, params: dict | None = None):
    """Look up a workload profile by registry name.

    Resolves through :data:`repro.registry.WORKLOADS`, so unknown names
    fail with the registry's did-you-mean error and ``params`` (a
    config's ``workload_params``) are validated against the plugin's
    declared schema before the factory runs.  Table 2 names return
    :class:`WorkloadProfile`; KV names return
    :class:`~repro.workloads.kv.KvProfile` with ``params`` applied as
    field overrides.
    """
    if not params:
        fast = PROFILES.get(name)
        if fast is not None:
            return fast
    from repro.registry import WORKLOADS

    WORKLOADS.validate(name, params, path="workload_params")
    return WORKLOADS.create(name, **(params or {}))
