"""Workload models: SPEC-like profiles, trace generation, trace I/O."""

from repro.workloads.generator import TraceGenerator, WriteRecord
from repro.workloads.profiles import (
    PAPER_TARGETS,
    PROFILES,
    WORKLOAD_NAMES,
    WorkloadProfile,
    get_profile,
)
from repro.workloads.kv import (
    KV_PROFILES,
    KvEngine,
    KvProfile,
    KvRequest,
    generate_kv_trace,
    request_stream,
)
from repro.workloads.stats import TraceStats, analyze_trace, recommend_scheme
from repro.workloads.suite import (
    CANNED_SUITES,
    RequestSuite,
    build_canned_suite,
    load_suite,
    record_suite,
    replay_suite,
)
from repro.workloads.trace import Trace, generate_trace

__all__ = [
    "CANNED_SUITES",
    "KV_PROFILES",
    "KvEngine",
    "KvProfile",
    "KvRequest",
    "PAPER_TARGETS",
    "PROFILES",
    "RequestSuite",
    "Trace",
    "TraceGenerator",
    "TraceStats",
    "WORKLOAD_NAMES",
    "WorkloadProfile",
    "WriteRecord",
    "analyze_trace",
    "build_canned_suite",
    "generate_kv_trace",
    "generate_trace",
    "get_profile",
    "load_suite",
    "record_suite",
    "recommend_scheme",
    "replay_suite",
]
