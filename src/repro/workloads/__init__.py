"""Workload models: SPEC-like profiles, trace generation, trace I/O."""

from repro.workloads.generator import TraceGenerator, WriteRecord
from repro.workloads.profiles import (
    PAPER_TARGETS,
    PROFILES,
    WORKLOAD_NAMES,
    WorkloadProfile,
    get_profile,
)
from repro.workloads.stats import TraceStats, analyze_trace, recommend_scheme
from repro.workloads.trace import Trace, generate_trace

__all__ = [
    "PAPER_TARGETS",
    "PROFILES",
    "WORKLOAD_NAMES",
    "Trace",
    "TraceGenerator",
    "TraceStats",
    "WorkloadProfile",
    "WriteRecord",
    "analyze_trace",
    "generate_trace",
    "get_profile",
    "recommend_scheme",
]
