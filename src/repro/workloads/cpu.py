"""CPU access-stream models: derive writebacks from first principles.

The calibrated generator in :mod:`repro.workloads.generator` produces
writeback streams directly.  This module closes the loop the other way:
synthesize a CPU *access* stream (loads and stores with locality), push it
through the write-back cache hierarchy of Table 1, and collect what falls
out of the last level — organic writebacks whose sparsity comes from real
cache dynamics rather than calibration.

Patterns:

* ``"stream"`` — sequential full-line stores (memcpy/array sweep): every
  word of a written-back line differs (Gems-like density).
* ``"object"`` — random objects in a working set get small header updates
  (version bump, one field): the footprint-stable sparse writes DEUCE
  exploits (libq/mcf-like).
* ``"mixed"`` — both, interleaved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.memory.cache import MemoryHierarchy
from repro.workloads.generator import WriteRecord
from repro.workloads.trace import Trace

#: A scaled-down Table 1 hierarchy (sizes shrunk so short streams exercise
#: capacity evictions; same 8-way shape).
DEFAULT_LEVELS = [(4 * 1024, 8), (16 * 1024, 8), (64 * 1024, 8)]


@dataclass(frozen=True)
class CpuWorkload:
    """Parameters of a synthetic CPU access stream.

    Attributes
    ----------
    pattern:
        ``"stream"``, ``"object"``, or ``"mixed"``.
    working_set_bytes:
        Touched address range.
    store_fraction:
        Stores among the accesses (rest are loads).
    object_bytes:
        Object granularity for the ``object`` pattern.
    seed:
        Stream RNG seed.
    """

    pattern: str = "object"
    working_set_bytes: int = 512 * 1024
    store_fraction: float = 0.4
    object_bytes: int = 64
    seed: int = 0


def _access_stream(workload: CpuWorkload, n_accesses: int):
    """Yield (byte address, is_store, store_data) tuples."""
    rng = random.Random(f"cpu:{workload.seed}:{workload.pattern}")
    n_objects = max(1, workload.working_set_bytes // workload.object_bytes)
    cursor = 0
    for i in range(n_accesses):
        use_stream = workload.pattern == "stream" or (
            workload.pattern == "mixed" and i % 3 == 0
        )
        if workload.pattern not in ("stream", "object", "mixed"):
            raise ValueError(f"unknown pattern {workload.pattern!r}")
        if use_stream:
            address = cursor % workload.working_set_bytes
            cursor += 64
            yield address, True, rng.randbytes(64)
        else:
            obj = rng.randrange(n_objects)
            base = obj * workload.object_bytes
            if rng.random() < workload.store_fraction:
                # Header update: bump a small field near the object start.
                field_offset = 2 * rng.randrange(4)
                yield (
                    base + field_offset,
                    True,
                    rng.randrange(1, 1 << 16).to_bytes(2, "little"),
                )
            else:
                yield base + rng.randrange(workload.object_bytes), False, b""


def collect_writebacks(
    workload: CpuWorkload,
    n_accesses: int = 50_000,
    levels: list[tuple[int, int]] | None = None,
    line_bytes: int = 64,
    flush_at_end: bool = False,
) -> tuple[Trace, MemoryHierarchy]:
    """Run an access stream through a hierarchy, collect L4 writebacks.

    Returns the resulting :class:`Trace` (installable into any scheme) and
    the hierarchy (for cache statistics).
    """
    levels = levels or DEFAULT_LEVELS
    rng = random.Random(f"mem:{workload.seed}")
    n_lines = workload.working_set_bytes // line_bytes
    backing = {addr: rng.randbytes(line_bytes) for addr in range(n_lines)}
    initial = dict(backing)

    records: list[WriteRecord] = []
    hierarchy = MemoryHierarchy(
        levels,
        backing,
        writeback_sink=lambda addr, data: records.append(
            WriteRecord(addr, data)
        ),
        line_bytes=line_bytes,
    )
    for address, is_store, data in _access_stream(workload, n_accesses):
        # Stores that span a line boundary are split (rare: header fields
        # are aligned, stream stores are line-sized).
        if is_store:
            hierarchy.store(address, data)
        else:
            hierarchy.load(address)
    if flush_at_end:
        hierarchy.flush_all()

    trace = Trace(
        profile_name=f"cpu-{workload.pattern}",
        seed=workload.seed,
        line_bytes=line_bytes,
        initial={
            addr: initial.get(addr, bytes(line_bytes))
            for addr in {r.address for r in records} | set(initial)
        },
        records=records,
    )
    return trace, hierarchy
