"""Physical line images stored in the PCM array.

A *stored line* is what actually sits in the PCM cells: the (possibly
encrypted, possibly bit-flipped) data bytes plus the scheme's per-line
metadata bits (FNW flip bits, DEUCE modified bits, DynDEUCE mode bit).  The
per-line write counter is kept alongside; following the paper we do not count
counter increments in the modified-bits figure of merit because every
encrypted configuration pays for them identically (section 3.3 counts "the
Flip bit in FNW"-style metadata).
"""

from __future__ import annotations

import numpy as np


def make_meta(n_bits: int) -> np.ndarray:
    """A zeroed metadata bit vector."""
    if n_bits < 0:
        raise ValueError("n_bits must be non-negative")
    return np.zeros(n_bits, dtype=np.uint8)


def meta_flips(old: np.ndarray, new: np.ndarray) -> int:
    """Number of metadata bits that differ."""
    if old.shape != new.shape:
        raise ValueError(f"metadata shape mismatch: {old.shape} vs {new.shape}")
    return int(np.count_nonzero(old != new))


class StoredLine:
    """One cache line's physical state in PCM.

    Attributes
    ----------
    data:
        The stored data bytes (64 for the paper's configuration).  May be
        constructed from either ``bytes`` or a uint8 array.  When built from
        an array, the bytes are materialized lazily on first access — the
        hot write paths are array-native and never pay the copy.
    arr:
        Read-only ``np.uint8`` view of the stored image — what the
        vectorized scheme write paths operate on.
    meta:
        Scheme metadata bits (uint8 0/1 vector); contents are scheme-defined.
    counter:
        The per-line write counter of counter-mode encryption.  Stored in
        plaintext per section 2.4.
    """

    __slots__ = ("_data", "arr", "meta", "counter")

    def __init__(
        self,
        data: bytes | np.ndarray,
        meta: np.ndarray | None = None,
        counter: int = 0,
    ) -> None:
        if isinstance(data, np.ndarray):
            arr = data.astype(np.uint8, copy=False)
            arr.setflags(write=False)
            self._data: bytes | None = None
            self.arr = arr
        else:
            self._data = bytes(data)
            # bytes own an immutable buffer: this view is free and read-only.
            self.arr = np.frombuffer(self._data, dtype=np.uint8)
        self.meta = (
            np.asarray(meta, dtype=np.uint8) if meta is not None else make_meta(0)
        )
        self.counter = counter

    @classmethod
    def from_parts(
        cls, arr: np.ndarray, meta: np.ndarray, counter: int
    ) -> "StoredLine":
        """Zero-validation construction for the batch write paths.

        The caller must pass read-only ``uint8`` arrays (typically row views
        of a frozen parent buffer); no copies, casts, or flag changes are
        performed.  Semantically identical to ``StoredLine(arr, meta,
        counter)`` — this exists because the batch commit loops create
        thousands of lines per chunk and the constructor's checks dominate.
        """
        self = cls.__new__(cls)
        self._data = None
        self.arr = arr
        self.meta = meta
        self.counter = counter
        return self

    @property
    def data(self) -> bytes:
        if self._data is None:
            self._data = self.arr.tobytes()
        return self._data

    @property
    def n_data_bits(self) -> int:
        return 8 * int(self.arr.size)

    @property
    def n_meta_bits(self) -> int:
        return int(self.meta.size)

    def __repr__(self) -> str:
        return (
            f"StoredLine(data={self.data!r}, meta={self.meta!r}, "
            f"counter={self.counter})"
        )

    def copy(self) -> "StoredLine":
        return StoredLine(self.arr, self.meta.copy(), self.counter)
