"""Physical line images stored in the PCM array.

A *stored line* is what actually sits in the PCM cells: the (possibly
encrypted, possibly bit-flipped) data bytes plus the scheme's per-line
metadata bits (FNW flip bits, DEUCE modified bits, DynDEUCE mode bit).  The
per-line write counter is kept alongside; following the paper we do not count
counter increments in the modified-bits figure of merit because every
encrypted configuration pays for them identically (section 3.3 counts "the
Flip bit in FNW"-style metadata).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def make_meta(n_bits: int) -> np.ndarray:
    """A zeroed metadata bit vector."""
    if n_bits < 0:
        raise ValueError("n_bits must be non-negative")
    return np.zeros(n_bits, dtype=np.uint8)


def meta_flips(old: np.ndarray, new: np.ndarray) -> int:
    """Number of metadata bits that differ."""
    if old.shape != new.shape:
        raise ValueError(f"metadata shape mismatch: {old.shape} vs {new.shape}")
    return int(np.count_nonzero(old != new))


@dataclass
class StoredLine:
    """One cache line's physical state in PCM.

    Attributes
    ----------
    data:
        The stored data bytes (64 for the paper's configuration).
    meta:
        Scheme metadata bits (uint8 0/1 vector); contents are scheme-defined.
    counter:
        The per-line write counter of counter-mode encryption.  Stored in
        plaintext per section 2.4.
    """

    data: bytes
    meta: np.ndarray = field(default_factory=lambda: make_meta(0))
    counter: int = 0

    def __post_init__(self) -> None:
        self.data = bytes(self.data)
        self.meta = np.asarray(self.meta, dtype=np.uint8)

    @property
    def n_data_bits(self) -> int:
        return 8 * len(self.data)

    @property
    def n_meta_bits(self) -> int:
        return int(self.meta.size)

    def copy(self) -> "StoredLine":
        return StoredLine(self.data, self.meta.copy(), self.counter)
