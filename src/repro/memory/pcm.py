"""PCM array model: per-bit wear tracking and write-slot accounting.

Two PCM realities drive the paper's evaluation:

* **Endurance** — every cell tolerates a bounded number of programs, so the
  per-bit write distribution (not just the average) determines lifetime
  (section 5).  :class:`PcmArray` accumulates exactly which bit positions of
  which lines were programmed, optionally after the horizontal-wear-leveling
  rotation.
* **Write power** — the write circuitry can program 128 bits per *slot*
  (150 ns each), provisioned for at most 64 flips via internal Flip-N-Write
  (section 6.1, [19, 22]).  A 64-byte line spans four slots; a slot is
  consumed only when its 128-bit region contains at least one flipped bit,
  which is why bit-flip reduction shortens writes only when the surviving
  flips also *cluster* (the fragmentation effect of Figure 15).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.schemes.base import WriteOutcome

#: Write-region width from the 8Gb PCM prototype the paper cites [19].
SLOT_BITS = 128
#: Max flips one slot's current budget can program (internal FNW provisioned).
SLOT_FLIP_BUDGET = 64
#: Program latency of one slot.
SLOT_LATENCY_NS = 150.0
#: Read latency of the array (Table 1).
READ_LATENCY_NS = 75.0


def slots_for_positions(
    flipped_positions: np.ndarray,
    line_bits: int,
    slot_bits: int = SLOT_BITS,
) -> int:
    """Write slots consumed by a write that flips the given bit positions.

    Each ``slot_bits``-wide region of the line needs one slot iff any of its
    bits flip.  Metadata bits (positions >= ``line_bits``) ride along with
    the last region, matching hardware where the 32 tracking bits live in
    the same row as the data.
    """
    if flipped_positions.size == 0:
        return 0
    n_regions = -(-line_bits // slot_bits)
    regions = np.minimum(flipped_positions // slot_bits, n_regions - 1)
    return int(np.unique(regions).size)


def slots_for_write(
    outcome: WriteOutcome, line_bits: int, slot_bits: int = SLOT_BITS
) -> int:
    """Slots consumed by a :class:`WriteOutcome` (data + metadata flips)."""
    positions = outcome.flipped_data_positions
    if outcome.flipped_meta_positions.size:
        meta = outcome.flipped_meta_positions + line_bits
        positions = np.concatenate([positions, meta])
    return slots_for_positions(positions, line_bits, slot_bits)


def slots_for_batch(
    n_writes: int,
    data_positions: np.ndarray,
    data_rows: np.ndarray,
    meta_positions: np.ndarray,
    meta_rows: np.ndarray,
    line_bits: int,
    slot_bits: int = SLOT_BITS,
) -> np.ndarray:
    """Per-write slot counts for a whole chunk (vectorized).

    Builds a (write, region) presence matrix and sums it per row — the
    batched form of :func:`slots_for_write` for a
    :class:`~repro.schemes.batch.BatchOutcome`'s flat position arrays.
    """
    n_regions = -(-line_bits // slot_bits)
    presence = np.zeros((n_writes, n_regions), dtype=bool)
    if data_positions.size:
        regions = np.minimum(data_positions // slot_bits, n_regions - 1)
        presence[data_rows, regions] = True
    if meta_positions.size:
        # Metadata bits ride along with the last region (positions are
        # >= line_bits after the offset, hence always clamped).
        presence[meta_rows, n_regions - 1] = True
    return presence.sum(axis=1, dtype=np.int64)


def slots_for_batch_diffs(
    data_diff: np.ndarray,
    meta_diff: np.ndarray | None,
    line_bits: int,
    slot_bits: int = SLOT_BITS,
) -> np.ndarray:
    """Per-write slot counts straight from a chunk's packed diff matrices.

    Equivalent to :func:`slots_for_batch` over the expanded bit positions,
    but works on the ``(m, line_bytes)`` byte diff: a region is occupied iff
    any of its bytes differ, one ``reduceat`` per chunk.  Requires
    byte-aligned regions (``slot_bits % 8 == 0``, true for the hardware's
    128-bit slots).
    """
    if slot_bits % 8:
        raise ValueError("slot_bits must be a multiple of 8")
    m, n_bytes = data_diff.shape
    n_regions = -(-line_bits // slot_bits)
    slot_bytes = slot_bits // 8
    # Region boundaries in byte space; bytes past (n_regions-1)*slot_bytes
    # collapse into the last region exactly like the position clamp.
    starts = np.arange(0, min(n_regions * slot_bytes, n_bytes), slot_bytes)
    presence = np.bitwise_or.reduceat(data_diff, starts, axis=1) != 0
    if meta_diff is not None and meta_diff.size:
        # Metadata bits ride along with the last region.
        presence[:, -1] |= meta_diff.any(axis=1)
    return presence.sum(axis=1, dtype=np.int64)


@dataclass
class WearSummary:
    """Aggregate wear statistics over the tracked array region.

    Attributes
    ----------
    total_writes:
        Number of line writebacks applied.
    total_flips:
        Total cell programs.
    position_writes:
        Programs per *bit position* summed over all lines — the profile of
        Figure 12 and the input to the lifetime model.
    max_line_bit_writes:
        The single most-worn cell's program count.
    """

    total_writes: int
    total_flips: int
    position_writes: np.ndarray
    max_line_bit_writes: int

    @property
    def mean_position_writes(self) -> float:
        return float(self.position_writes.mean()) if self.position_writes.size else 0.0

    @property
    def max_over_mean(self) -> float:
        """Figure 12's metric: hottest bit position over the average."""
        mean = self.mean_position_writes
        return float(self.position_writes.max()) / mean if mean > 0 else 0.0


class PcmArray:
    """Per-bit wear accounting for a set of lines.

    Parameters
    ----------
    line_bytes:
        Data bytes per line.
    meta_bits:
        Scheme metadata bits per line; they occupy cells too and are rotated
        together with the data under HWL ("including any metadata bits
        associated with the line", section 5.3).
    track_per_line:
        When True, keeps a full (line, bit) wear matrix so the most-worn
        *cell* is known exactly; when False only the per-position aggregate
        is kept (cheaper, sufficient for HWL-on studies).
    """

    def __init__(
        self,
        line_bytes: int = 64,
        meta_bits: int = 0,
        track_per_line: bool = True,
    ) -> None:
        if line_bytes <= 0 or meta_bits < 0:
            raise ValueError("invalid geometry")
        self.line_bytes = line_bytes
        self.meta_bits = meta_bits
        self.bits_per_line = 8 * line_bytes + meta_bits
        self.track_per_line = track_per_line
        self.position_writes = np.zeros(self.bits_per_line, dtype=np.int64)
        self._line_wear: dict[int, np.ndarray] = {}
        self.total_writes = 0
        self.total_flips = 0

    def apply_write(self, outcome: WriteOutcome, rotation: int = 0) -> int:
        """Record one write's cell programs; returns the flip count.

        Parameters
        ----------
        outcome:
            The scheme's write outcome (logical flip positions).
        rotation:
            HWL rotation amount for this line at this moment: logical bit
            ``i`` resides in physical cell ``(i + rotation) % bits_per_line``.
        """
        positions = outcome.flipped_data_positions
        if outcome.flipped_meta_positions.size:
            meta = outcome.flipped_meta_positions + 8 * self.line_bytes
            positions = np.concatenate([positions, meta])
        if rotation:
            positions = (positions + rotation) % self.bits_per_line
        np.add.at(self.position_writes, positions, 1)
        if self.track_per_line:
            wear = self._line_wear.get(outcome.address)
            if wear is None:
                wear = np.zeros(self.bits_per_line, dtype=np.int64)
                self._line_wear[outcome.address] = wear
            np.add.at(wear, positions, 1)
        self.total_writes += 1
        self.total_flips += int(positions.size)
        return int(positions.size)

    def apply_batch(
        self,
        addresses: np.ndarray,
        data_positions: np.ndarray,
        data_rows: np.ndarray,
        meta_positions: np.ndarray,
        meta_rows: np.ndarray,
        rotations: np.ndarray | None = None,
    ) -> int:
        """Record a whole chunk's cell programs with scatter-adds.

        Parameters mirror the flat position arrays of a
        :class:`~repro.schemes.batch.BatchOutcome`: ``addresses`` is the
        per-row line address, ``*_positions`` the flipped bit indices and
        ``*_rows`` the row each belongs to.  ``rotations``, when given, is
        the per-row HWL rotation (static within a chunk — the runner cuts
        chunks at rotation changes).  Equivalent to ``m`` sequential
        :meth:`apply_write` calls; returns the total flip count.
        """
        m = int(addresses.shape[0])
        if meta_positions.size:
            positions = np.concatenate(
                [data_positions, meta_positions + 8 * self.line_bytes]
            )
            rows = np.concatenate([data_rows, meta_rows])
        else:
            positions = data_positions
            rows = data_rows
        if rotations is not None and positions.size:
            positions = (positions + rotations[rows]) % self.bits_per_line
        if positions.size:
            np.add.at(self.position_writes, positions, 1)
        if self.track_per_line and positions.size:
            # One bincount per touched line: flatten (line, position) into a
            # single index space so the whole chunk is one scatter.
            line_ids = addresses[rows]
            uniq, inv = np.unique(line_ids, return_inverse=True)
            flat = np.bincount(
                inv * self.bits_per_line + positions,
                minlength=uniq.size * self.bits_per_line,
            ).reshape(uniq.size, self.bits_per_line)
            for k, addr in enumerate(uniq.tolist()):
                wear = self._line_wear.get(addr)
                if wear is None:
                    wear = np.zeros(self.bits_per_line, dtype=np.int64)
                    self._line_wear[addr] = wear
                wear += flat[k]
        self.total_writes += m
        self.total_flips += int(positions.size)
        return int(positions.size)

    def apply_batch_diffs(
        self,
        addresses: np.ndarray,
        data_diff: np.ndarray,
        meta_diff: np.ndarray | None = None,
        rotations: np.ndarray | None = None,
    ) -> int:
        """Record a chunk's cell programs from its packed diff matrices.

        The histogram contribution of a chunk is a column-wise bit count of
        the unpacked diff — no flat position arrays.  ``rotations`` (per
        row) must be constant within each line's rows, which the runner
        guarantees by cutting chunks at wear-leveler events; a line's
        rotated histogram is then just ``np.roll`` of its unrotated one.
        Bit-identical to :meth:`apply_batch` over the expanded positions.
        """
        m, n_bytes = data_diff.shape
        if n_bytes != self.line_bytes:
            raise ValueError("diff width does not match line_bytes")
        data_bits = 8 * n_bytes
        bits = np.unpackbits(data_diff, axis=1)
        meta_w = (
            meta_diff.shape[1]
            if meta_diff is not None and meta_diff.size
            else 0
        )
        rotated = rotations is not None and bool(np.any(rotations))
        if not (self.track_per_line or rotated):
            colsum = bits.sum(axis=0, dtype=np.int64)
            self.position_writes[:data_bits] += colsum
            flips = int(colsum.sum())
            if meta_w:
                meta_colsum = meta_diff.sum(axis=0, dtype=np.int64)
                self.position_writes[data_bits : data_bits + meta_w] += (
                    meta_colsum
                )
                flips += int(meta_colsum.sum())
        else:
            flips = 0
            uniq, inv = np.unique(addresses, return_inverse=True)
            for k, addr in enumerate(uniq.tolist()):
                rows = inv == k
                h = np.zeros(self.bits_per_line, dtype=np.int64)
                h[:data_bits] = bits[rows].sum(axis=0, dtype=np.int64)
                if meta_w:
                    h[data_bits : data_bits + meta_w] = meta_diff[rows].sum(
                        axis=0, dtype=np.int64
                    )
                flips += int(h.sum())
                if rotations is not None:
                    rot = int(rotations[int(np.argmax(rows))])
                    if rot:
                        h = np.roll(h, rot % self.bits_per_line)
                self.position_writes += h
                if self.track_per_line:
                    wear = self._line_wear.get(addr)
                    if wear is None:
                        wear = np.zeros(self.bits_per_line, dtype=np.int64)
                        self._line_wear[addr] = wear
                    wear += h
        self.total_writes += m
        self.total_flips += flips
        return flips

    def state_dict(self) -> dict[str, object]:
        """All mutable wear state (for run checkpoints)."""
        state: dict[str, object] = {
            "position_writes": self.position_writes.copy(),
            "total_writes": self.total_writes,
            "total_flips": self.total_flips,
        }
        if self.track_per_line:
            n = len(self._line_wear)
            addresses = np.empty(n, dtype=np.int64)
            wear = np.empty((n, self.bits_per_line), dtype=np.int64)
            for i, (addr, w) in enumerate(self._line_wear.items()):
                addresses[i] = addr
                wear[i] = w
            state["wear_addresses"] = addresses
            state["wear_matrix"] = wear
        return state

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot bit-identically."""
        self.position_writes = np.asarray(
            state["position_writes"], dtype=np.int64
        ).copy()
        self.total_writes = int(state["total_writes"])
        self.total_flips = int(state["total_flips"])
        self._line_wear = {}
        if self.track_per_line:
            addresses = np.asarray(state["wear_addresses"], dtype=np.int64)
            wear = np.asarray(state["wear_matrix"], dtype=np.int64)
            for i in range(addresses.size):
                self._line_wear[int(addresses[i])] = wear[i].copy()

    def line_wear(self, address: int) -> np.ndarray:
        """Per-bit program counts for one line (zeros if never written)."""
        if not self.track_per_line:
            raise RuntimeError("per-line tracking disabled for this array")
        wear = self._line_wear.get(address)
        if wear is None:
            return np.zeros(self.bits_per_line, dtype=np.int64)
        return wear.copy()

    def summary(self) -> WearSummary:
        if self.track_per_line and self._line_wear:
            max_cell = max(int(w.max()) for w in self._line_wear.values())
        else:
            max_cell = int(self.position_writes.max()) if self.total_writes else 0
        return WearSummary(
            total_writes=self.total_writes,
            total_flips=self.total_flips,
            position_writes=self.position_writes.copy(),
            max_line_bit_writes=max_cell,
        )
