"""Write-back cache hierarchy — where the writeback stream comes from.

Table 1's system puts four cache levels (32KB/256KB/1MB private + a 64MB
shared L4) between the cores and PCM; *the PCM only ever sees L4
evictions*.  This module implements that substrate functionally: a
set-associative, write-back/write-allocate cache with LRU replacement that
holds real line contents, composable into a hierarchy.  Stores mutate the
cached bytes; evicting a dirty line emits a writeback with the actual data —
exactly the records the schemes consume.

Used by :func:`repro.workloads.cpu.collect_writebacks` to derive writeback
traces from first principles (an access stream), complementing the
calibrated statistical generator.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

#: Writeback sink signature: (line address, line contents).
WritebackSink = Callable[[int, bytes], None]


@dataclass
class CacheStats:
    """Hit/miss/writeback counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def mpki(self) -> float:
        """Misses per thousand accesses (proxy for MPKI in tests)."""
        return 1000.0 * self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """One write-back, write-allocate cache level with LRU replacement.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    ways:
        Associativity.
    line_bytes:
        Line size (64 throughout the paper).
    fetch:
        Where misses get their data: ``fetch(address) -> bytes``.  For a
        lower cache level, this is the next level's :meth:`load`; for the
        last level, main memory.
    writeback_sink:
        Where dirty evictions go: the next level's :meth:`store_line`, or
        the PCM write path for the last level.
    name:
        Label for stats reporting.
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        line_bytes: int,
        fetch: Callable[[int], bytes],
        writeback_sink: WritebackSink,
        name: str = "cache",
    ) -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        n_lines = size_bytes // line_bytes
        if n_lines < ways or n_lines % ways:
            raise ValueError(
                f"{size_bytes}B / {line_bytes}B lines does not divide into "
                f"{ways} ways"
            )
        self.name = name
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = n_lines // ways
        self._fetch = fetch
        self._sink = writeback_sink
        # set index -> OrderedDict of tag -> (bytearray data, dirty flag);
        # OrderedDict order is LRU (oldest first).
        self._sets: list[OrderedDict[int, list]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()

    # -- addressing ----------------------------------------------------------

    def _locate(self, line_address: int) -> tuple[OrderedDict, int]:
        return self._sets[line_address % self.n_sets], line_address // self.n_sets

    # -- line movement -----------------------------------------------------------

    def _ensure_resident(self, line_address: int) -> list:
        """Fetch (allocating and possibly evicting) and return the entry."""
        cache_set, tag = self._locate(line_address)
        entry = cache_set.get(tag)
        self.stats.accesses += 1
        if entry is not None:
            self.stats.hits += 1
            cache_set.move_to_end(tag)
            return entry
        self.stats.misses += 1
        if len(cache_set) >= self.ways:
            victim_tag, (victim_data, dirty) = cache_set.popitem(last=False)
            if dirty:
                victim_address = victim_tag * self.n_sets + (
                    line_address % self.n_sets
                )
                self._sink(victim_address, bytes(victim_data))
                self.stats.writebacks += 1
        entry = [bytearray(self._fetch(line_address)), False]
        cache_set[tag] = entry
        return entry

    # -- public interface ------------------------------------------------------------

    def load(self, line_address: int) -> bytes:
        """Read a whole line through this level."""
        return bytes(self._ensure_resident(line_address)[0])

    def store(self, line_address: int, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset`` within a line (write-allocate)."""
        if offset < 0 or offset + len(data) > self.line_bytes:
            raise ValueError("store crosses the line boundary")
        entry = self._ensure_resident(line_address)
        entry[0][offset: offset + len(data)] = data
        entry[1] = True

    def store_line(self, line_address: int, data: bytes) -> None:
        """Accept a full-line writeback from the level above."""
        if len(data) != self.line_bytes:
            raise ValueError(f"line must be {self.line_bytes} bytes")
        entry = self._ensure_resident(line_address)
        entry[0][:] = data
        entry[1] = True

    def flush(self) -> int:
        """Write every dirty line to the sink; returns lines written."""
        flushed = 0
        for set_index, cache_set in enumerate(self._sets):
            for tag, (data, dirty) in list(cache_set.items()):
                if dirty:
                    self._sink(tag * self.n_sets + set_index, bytes(data))
                    self.stats.writebacks += 1
                    flushed += 1
            cache_set.clear()
        return flushed


class MemoryHierarchy:
    """A chain of cache levels over a backing line store.

    Parameters
    ----------
    levels:
        (size_bytes, ways) per level, outermost last — e.g. Table 1's
        ``[(32*1024, 8), (256*1024, 8), (1024*1024, 8), (l4_size, 8)]``.
    backing:
        address -> line contents for cold misses (missing lines read as
        zeros and are added on first touch).
    writeback_sink:
        Receives the last level's dirty evictions — the PCM write stream.
    """

    def __init__(
        self,
        levels: list[tuple[int, int]],
        backing: dict[int, bytes],
        writeback_sink: WritebackSink,
        line_bytes: int = 64,
    ) -> None:
        if not levels:
            raise ValueError("at least one cache level required")
        self.line_bytes = line_bytes
        self.backing = backing

        def backing_fetch(address: int) -> bytes:
            line = backing.get(address)
            if line is None:
                line = bytes(line_bytes)
                backing[address] = line
            return line

        def backing_sink(address: int, data: bytes) -> None:
            backing[address] = data
            writeback_sink(address, data)

        # Build from the last level toward the first.
        fetch = backing_fetch
        sink: WritebackSink = backing_sink
        self.levels: list[SetAssociativeCache] = []
        for i, (size, ways) in reversed(list(enumerate(levels))):
            cache = SetAssociativeCache(
                size, ways, line_bytes, fetch, sink, name=f"L{i + 1}"
            )
            self.levels.insert(0, cache)
            fetch = cache.load
            sink = cache.store_line

        self.first = self.levels[0]
        self.last = self.levels[-1]

    def load(self, address: int) -> bytes:
        """CPU load of the line containing ``address``."""
        return self.first.load(address // self.line_bytes)

    def store(self, address: int, data: bytes) -> None:
        """CPU store of ``data`` at byte address ``address``."""
        line, offset = divmod(address, self.line_bytes)
        self.first.store(line, offset, data)

    def flush_all(self) -> int:
        """Flush every level outward (e.g. at power-down)."""
        flushed = 0
        for level in self.levels:
            flushed += level.flush()
        return flushed
