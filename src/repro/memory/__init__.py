"""Memory substrate: bit utilities, line images, the PCM array model."""

from repro.memory.line import StoredLine, make_meta, meta_flips
from repro.memory.pcm import (
    READ_LATENCY_NS,
    SLOT_BITS,
    SLOT_FLIP_BUDGET,
    SLOT_LATENCY_NS,
    PcmArray,
    WearSummary,
    slots_for_positions,
    slots_for_write,
)

__all__ = [
    "READ_LATENCY_NS",
    "SLOT_BITS",
    "SLOT_FLIP_BUDGET",
    "SLOT_LATENCY_NS",
    "PcmArray",
    "StoredLine",
    "WearSummary",
    "make_meta",
    "meta_flips",
    "slots_for_positions",
    "slots_for_write",
]
