"""Bit-level helpers shared by the PCM model and the write schemes.

The paper's figure of merit (section 3.3) is the number of *modified bits* per
writeback, so almost everything in this repo eventually reduces to "XOR two
byte strings and count ones".  These helpers keep that fast (numpy look-up
table) and put the other recurring bit manipulations — word diffs, per-bit
expansion, line rotation for horizontal wear leveling — in one place.
"""

from __future__ import annotations

import numpy as np

#: popcount of every byte value, used to vectorize bit-flip counting.
POPCOUNT8 = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint32)


def popcount(data: bytes) -> int:
    """Number of set bits in a byte string."""
    if not data:
        return 0
    arr = np.frombuffer(data, dtype=np.uint8)
    return int(POPCOUNT8[arr].sum())


def bit_flips(old: bytes, new: bytes) -> int:
    """Number of bit positions that differ between two equal-length strings."""
    if len(old) != len(new):
        raise ValueError(f"length mismatch: {len(old)} vs {len(new)}")
    if not old:
        return 0
    a = np.frombuffer(old, dtype=np.uint8)
    b = np.frombuffer(new, dtype=np.uint8)
    return int(POPCOUNT8[a ^ b].sum())


def xor(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings (numpy-backed)."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    if not a:
        return b""
    return (
        np.frombuffer(a, dtype=np.uint8) ^ np.frombuffer(b, dtype=np.uint8)
    ).tobytes()


def directional_flips(old: bytes, new: bytes) -> tuple[int, int]:
    """(SET, RESET) cell-program counts between two stored images.

    PCM programs are asymmetric [2]: SET (0 -> 1, crystallize) is slow and
    RESET (1 -> 0, melt-quench) is fast but power-hungry, so schemes and
    energy models sometimes need the two directions separately.  Returns
    ``(zeros_to_ones, ones_to_zeros)``; their sum equals
    :func:`bit_flips`.
    """
    if len(old) != len(new):
        raise ValueError(f"length mismatch: {len(old)} vs {len(new)}")
    if not old:
        return 0, 0
    a = np.frombuffer(old, dtype=np.uint8)
    b = np.frombuffer(new, dtype=np.uint8)
    sets = int(POPCOUNT8[(~a) & b].sum())
    resets = int(POPCOUNT8[a & (~b)].sum())
    return sets, resets


def changed_words(old: bytes, new: bytes, word_bytes: int) -> list[int]:
    """Indices of the ``word_bytes``-sized words that differ.

    This is the comparison the DEUCE write path performs after its
    read-before-write (section 4.3.2).
    """
    _check_word_args(len(old), len(new), word_bytes)
    return [
        w
        for w in range(len(old) // word_bytes)
        if old[w * word_bytes: (w + 1) * word_bytes]
        != new[w * word_bytes: (w + 1) * word_bytes]
    ]


def word_flip_counts(old: bytes, new: bytes, word_bytes: int) -> list[int]:
    """Bit flips per word between two lines (used by DynDEUCE's estimator)."""
    _check_word_args(len(old), len(new), word_bytes)
    a = np.frombuffer(old, dtype=np.uint8)
    b = np.frombuffer(new, dtype=np.uint8)
    per_byte = POPCOUNT8[a ^ b]
    return per_byte.reshape(-1, word_bytes).sum(axis=1).astype(int).tolist()


def to_bit_array(data: bytes) -> np.ndarray:
    """Expand bytes into a uint8 array of individual bits (MSB first)."""
    if not data:
        return np.zeros(0, dtype=np.uint8)
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))


def from_bit_array(bits: np.ndarray) -> bytes:
    """Inverse of :func:`to_bit_array`."""
    if bits.size % 8 != 0:
        raise ValueError("bit array length must be a multiple of 8")
    return np.packbits(bits.astype(np.uint8)).tobytes()


def flipped_positions(old: bytes, new: bytes) -> np.ndarray:
    """Bit positions (0 = MSB of byte 0) that differ between two lines.

    The per-bit wear model (Figure 12 / section 5) accumulates these.
    """
    if len(old) != len(new):
        raise ValueError(f"length mismatch: {len(old)} vs {len(new)}")
    diff = to_bit_array(xor(old, new))
    return np.nonzero(diff)[0]


def rotate_bits(data: bytes, amount: int) -> bytes:
    """Rotate a line left by ``amount`` bit positions (HWL, section 5.3).

    A positive amount moves every bit toward lower positions, wrapping
    around, i.e. bit ``i`` of the input lands at ``(i - amount) mod n``.
    """
    bits = to_bit_array(data)
    n = bits.size
    if n == 0:
        return b""
    return from_bit_array(np.roll(bits, -(amount % n)))


def unrotate_bits(data: bytes, amount: int) -> bytes:
    """Undo :func:`rotate_bits` with the same amount."""
    return rotate_bits(data, -amount)


def invert(data: bytes) -> bytes:
    """Bitwise complement (Flip-N-Write's inversion)."""
    if not data:
        return b""
    return (~np.frombuffer(data, dtype=np.uint8)).astype(np.uint8).tobytes()


def hamming_weight_fraction(data: bytes) -> float:
    """Fraction of set bits — handy sanity metric for pad avalanche tests."""
    if not data:
        return 0.0
    return popcount(data) / (8 * len(data))


def _check_word_args(len_old: int, len_new: int, word_bytes: int) -> None:
    if len_old != len_new:
        raise ValueError(f"length mismatch: {len_old} vs {len_new}")
    if word_bytes <= 0:
        raise ValueError("word_bytes must be positive")
    if len_old % word_bytes != 0:
        raise ValueError(
            f"line of {len_old} bytes is not a whole number of "
            f"{word_bytes}-byte words"
        )
