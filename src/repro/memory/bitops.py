"""Bit-level helpers shared by the PCM model and the write schemes.

The paper's figure of merit (section 3.3) is the number of *modified bits* per
writeback, so almost everything in this repo eventually reduces to "XOR two
byte strings and count ones".  These helpers keep that fast and put the other
recurring bit manipulations — word diffs, per-bit expansion, line rotation for
horizontal wear leveling — in one place.

Two API layers coexist:

* The original **bytes API** (``popcount``, ``xor``, ``changed_words``, ...)
  keeps every public signature stable for tests and external callers.
* An **array API** (``*_array`` variants) operates directly on ``np.uint8``
  arrays so the scheme write paths can stream a whole writeback through
  numpy without ``bytes <-> ndarray`` round-trips on every kernel call.

Per-byte popcounts use ``np.bitwise_count`` when the installed numpy provides
it (>= 2.0) and fall back to a 256-entry look-up table otherwise.
"""

from __future__ import annotations

import numpy as np

#: popcount of every byte value — the LUT fallback for bit-flip counting.
POPCOUNT8 = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint32)

#: Whether the fast hardware-popcount ufunc is available (numpy >= 2.0).
HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


if HAS_BITWISE_COUNT:

    def byte_popcounts(arr: np.ndarray) -> np.ndarray:
        """Per-byte popcount of a uint8 array (``np.bitwise_count`` path)."""
        return np.bitwise_count(arr)

else:  # pragma: no cover - exercised only on numpy < 2.0

    def byte_popcounts(arr: np.ndarray) -> np.ndarray:
        """Per-byte popcount of a uint8 array (LUT fallback)."""
        return POPCOUNT8[arr]


# -- bytes <-> array plumbing -------------------------------------------------


def as_array(data: bytes) -> np.ndarray:
    """View a byte string as a read-only ``np.uint8`` array (zero-copy)."""
    return np.frombuffer(data, dtype=np.uint8)


def to_bytes(arr: np.ndarray) -> bytes:
    """Materialize a uint8 array back into ``bytes``."""
    return arr.astype(np.uint8, copy=False).tobytes()


# -- array API ----------------------------------------------------------------


def popcount_array(arr: np.ndarray) -> int:
    """Number of set bits in a uint8 array."""
    if arr.size == 0:
        return 0
    return int(byte_popcounts(arr).sum())


def bit_flips_array(a: np.ndarray, b: np.ndarray) -> int:
    """Number of differing bit positions between two uint8 arrays."""
    if a.size != b.size:
        raise ValueError(f"length mismatch: {a.size} vs {b.size}")
    if a.size == 0:
        return 0
    return int(byte_popcounts(a ^ b).sum())


def directional_flips_array(a: np.ndarray, b: np.ndarray) -> tuple[int, int]:
    """(SET, RESET) program counts between two stored uint8 images."""
    if a.size != b.size:
        raise ValueError(f"length mismatch: {a.size} vs {b.size}")
    if a.size == 0:
        return 0, 0
    sets = int(byte_popcounts(~a & b).sum())
    resets = int(byte_popcounts(a & ~b).sum())
    return sets, resets


#: Machine dtypes for reinterpreting a uint8 line as whole tracking words,
#: so word comparison is a single vectorized != instead of a reduction.
WORD_DTYPES: dict[int, type] = {
    1: np.uint8,
    2: np.uint16,
    4: np.uint32,
    8: np.uint64,
}


def changed_words_array(
    a: np.ndarray, b: np.ndarray, word_bytes: int
) -> np.ndarray:
    """Indices of differing ``word_bytes``-sized words, as an int array.

    This is the comparison the DEUCE write path performs after its
    read-before-write (section 4.3.2).  Machine word sizes (1/2/4/8) compare
    as single wide integers; other sizes fall back to reshape +
    ``any(axis=1)``.
    """
    _check_word_args(a.size, b.size, word_bytes)
    if a.size == 0:
        return np.zeros(0, dtype=np.intp)
    dtype = WORD_DTYPES.get(word_bytes)
    if dtype is not None and a.flags.c_contiguous and b.flags.c_contiguous:
        return (a.view(dtype) != b.view(dtype)).nonzero()[0]
    diff = (a != b).reshape(-1, word_bytes)
    return diff.any(axis=1).nonzero()[0]


def word_flip_counts_array(
    a: np.ndarray, b: np.ndarray, word_bytes: int
) -> np.ndarray:
    """Bit flips per word between two uint8 lines."""
    _check_word_args(a.size, b.size, word_bytes)
    if a.size == 0:
        return np.zeros(0, dtype=np.int64)
    per_byte = byte_popcounts(a ^ b).astype(np.int64, copy=False)
    return per_byte.reshape(-1, word_bytes).sum(axis=1)


def flipped_positions_array(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bit positions (0 = MSB of byte 0) that differ between two lines.

    Unpacks only the *differing* bytes rather than the whole line: typical
    DEUCE writes touch a handful of words, so expanding all 64 bytes to 512
    bits per write wastes most of the work.
    """
    if a.size != b.size:
        raise ValueError(f"length mismatch: {a.size} vs {b.size}")
    if a.size == 0:
        return np.zeros(0, dtype=np.int64)
    diff = a ^ b
    nz = np.nonzero(diff)[0]
    if nz.size == 0:
        return np.zeros(0, dtype=np.int64)
    bits = np.unpackbits(diff[nz]).reshape(-1, 8)
    rows, cols = np.nonzero(bits)
    return (nz[rows] * 8 + cols).astype(np.int64)


# -- bytes API (stable public surface) ---------------------------------------


def popcount(data: bytes) -> int:
    """Number of set bits in a byte string."""
    if not data:
        return 0
    return popcount_array(as_array(data))


def bit_flips(old: bytes, new: bytes) -> int:
    """Number of bit positions that differ between two equal-length strings."""
    if len(old) != len(new):
        raise ValueError(f"length mismatch: {len(old)} vs {len(new)}")
    if not old:
        return 0
    return bit_flips_array(as_array(old), as_array(new))


def xor(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings (numpy-backed)."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    if not a:
        return b""
    return (as_array(a) ^ as_array(b)).tobytes()


def directional_flips(old: bytes, new: bytes) -> tuple[int, int]:
    """(SET, RESET) cell-program counts between two stored images.

    PCM programs are asymmetric [2]: SET (0 -> 1, crystallize) is slow and
    RESET (1 -> 0, melt-quench) is fast but power-hungry, so schemes and
    energy models sometimes need the two directions separately.  Returns
    ``(zeros_to_ones, ones_to_zeros)``; their sum equals
    :func:`bit_flips`.
    """
    if len(old) != len(new):
        raise ValueError(f"length mismatch: {len(old)} vs {len(new)}")
    if not old:
        return 0, 0
    return directional_flips_array(as_array(old), as_array(new))


def changed_words(old: bytes, new: bytes, word_bytes: int) -> list[int]:
    """Indices of the ``word_bytes``-sized words that differ."""
    _check_word_args(len(old), len(new), word_bytes)
    return changed_words_array(as_array(old), as_array(new), word_bytes).tolist()


def changed_words_reference(old: bytes, new: bytes, word_bytes: int) -> list[int]:
    """Pure-Python slice-loop implementation of :func:`changed_words`.

    Kept as the parity oracle for the vectorized kernel (property tests
    compare the two over random lines); not used on the hot path.
    """
    _check_word_args(len(old), len(new), word_bytes)
    return [
        w
        for w in range(len(old) // word_bytes)
        if old[w * word_bytes: (w + 1) * word_bytes]
        != new[w * word_bytes: (w + 1) * word_bytes]
    ]


def word_flip_counts(old: bytes, new: bytes, word_bytes: int) -> list[int]:
    """Bit flips per word between two lines (used by DynDEUCE's estimator)."""
    _check_word_args(len(old), len(new), word_bytes)
    return word_flip_counts_array(
        as_array(old), as_array(new), word_bytes
    ).tolist()


def to_bit_array(data: bytes) -> np.ndarray:
    """Expand bytes into a uint8 array of individual bits (MSB first)."""
    if not data:
        return np.zeros(0, dtype=np.uint8)
    return np.unpackbits(as_array(data))


def from_bit_array(bits: np.ndarray) -> bytes:
    """Inverse of :func:`to_bit_array`."""
    if bits.size % 8 != 0:
        raise ValueError("bit array length must be a multiple of 8")
    return np.packbits(bits.astype(np.uint8)).tobytes()


def flipped_positions(old: bytes, new: bytes) -> np.ndarray:
    """Bit positions (0 = MSB of byte 0) that differ between two lines.

    The per-bit wear model (Figure 12 / section 5) accumulates these.
    """
    if len(old) != len(new):
        raise ValueError(f"length mismatch: {len(old)} vs {len(new)}")
    return flipped_positions_array(as_array(old), as_array(new))


def rotate_bits(data: bytes, amount: int) -> bytes:
    """Rotate a line left by ``amount`` bit positions (HWL, section 5.3).

    A positive amount moves every bit toward lower positions, wrapping
    around, i.e. bit ``i`` of the input lands at ``(i - amount) mod n``.
    """
    bits = to_bit_array(data)
    n = bits.size
    if n == 0:
        return b""
    return from_bit_array(np.roll(bits, -(amount % n)))


def unrotate_bits(data: bytes, amount: int) -> bytes:
    """Undo :func:`rotate_bits` with the same amount."""
    return rotate_bits(data, -amount)


def invert(data: bytes) -> bytes:
    """Bitwise complement (Flip-N-Write's inversion)."""
    if not data:
        return b""
    return (~as_array(data)).astype(np.uint8).tobytes()


def hamming_weight_fraction(data: bytes) -> float:
    """Fraction of set bits — handy sanity metric for pad avalanche tests."""
    if not data:
        return 0.0
    return popcount(data) / (8 * len(data))


def _check_word_args(len_old: int, len_new: int, word_bytes: int) -> None:
    if len_old != len_new:
        raise ValueError(f"length mismatch: {len_old} vs {len_new}")
    if word_bytes <= 0:
        raise ValueError("word_bytes must be positive")
    if len_old % word_bytes != 0:
        raise ValueError(
            f"line of {len_old} bytes is not a whole number of "
            f"{word_bytes}-byte words"
        )
