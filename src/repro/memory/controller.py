"""Secure PCM memory controller — the library's high-level facade.

Combines a write scheme, the PCM wear model, and (optionally) Start-Gap +
Horizontal Wear Leveling behind the interface a memory controller presents:
``read(address)`` and ``write(address, data)``.  Lines are installed
(initially encrypted) transparently on first touch, matching section 3.1's
assumption that pages are encrypted as they are placed into memory.

This is what the examples and downstream users drive; the lower-level
pieces stay importable for research use.

Example
-------
>>> from repro.memory.controller import SecureMemoryController
>>> mc = SecureMemoryController(scheme="deuce", key=b"0123456789abcdef")
>>> mc.write(0x1000, bytes(64))
>>> mc.read(0x1000) == bytes(64)
True
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.pads import make_pad_source
from repro.crypto.rekey import VersionedPadSource
from repro.memory import bitops
from repro.memory.line import meta_flips
from repro.memory.pcm import PcmArray, WearSummary, slots_for_write
from repro.schemes import ENCRYPTED_SCHEMES, make_scheme
from repro.schemes.base import WriteOutcome
from repro.security.endurance import ThrottlingGuard, WriteStreamDetector
from repro.security.merkle import IntegrityError, MerkleTree
from repro.wear.hwl import HorizontalWearLeveler, NoWearLeveler
from repro.wear.lifetime import LifetimeReport, lifetime_report
from repro.wear.startgap import StartGap


@dataclass
class ControllerStats:
    """Running counters maintained by the controller."""

    writes: int = 0
    reads: int = 0
    installs: int = 0
    total_flips: int = 0
    total_slots: int = 0
    throttle_slots: int = 0
    integrity_checks: int = 0
    rekeys: int = 0
    rekey_flips: int = 0

    @property
    def avg_flips_per_write(self) -> float:
        return self.total_flips / self.writes if self.writes else 0.0

    @property
    def avg_slots_per_write(self) -> float:
        return self.total_slots / self.writes if self.writes else 0.0


class SecureMemoryController:
    """Encrypted, wear-leveled PCM main memory.

    Parameters
    ----------
    scheme:
        Write-scheme name (default ``"deuce"``); see
        :data:`repro.schemes.SCHEME_NAMES`.
    key:
        Secret key for the pad source (required for encrypted schemes).
    pad_kind:
        ``"blake2"`` (fast) or ``"aes"`` (real cipher).
    line_bytes / word_bytes / epoch_interval / fnw_group_bits:
        Scheme geometry (paper defaults).
    wear_leveling:
        ``"none"``, ``"hwl"``, or ``"hwl-hashed"``.
    region_lines:
        Lines covered by one Start-Gap region (sets HWL's rotation cadence
        together with ``gap_write_interval``).
    gap_write_interval:
        Demand writes per Start-Gap movement.
    integrity:
        Protect per-line counters with a Merkle tree (footnote 1's defence
        against bus-tampering / counter-reset attacks).  Reads verify the
        stored counter against the trusted root and raise
        :class:`~repro.security.merkle.IntegrityError` on mismatch.
    attack_detection:
        Run the endurance-attack detector (section 7.3) over the write
        stream and throttle flagged lines; throttle cost accumulates in
        ``stats.throttle_slots``.
    counter_bits:
        Per-line counter width (the paper provisions 28 bits).  When set,
        a line whose counter saturates is *re-keyed*: re-encrypted under a
        fresh key version with its counter reset, preserving the
        no-pad-reuse invariant.  Maintenance cost accumulates in
        ``stats.rekeys`` / ``stats.rekey_flips``.
    """

    def __init__(
        self,
        scheme: str = "deuce",
        key: bytes = b"",
        pad_kind: str = "blake2",
        line_bytes: int = 64,
        word_bytes: int = 2,
        epoch_interval: int = 32,
        fnw_group_bits: int = 16,
        wear_leveling: str = "hwl",
        region_lines: int = 4096,
        gap_write_interval: int = 100,
        integrity: bool = False,
        attack_detection: bool = False,
        counter_bits: int | None = None,
    ) -> None:
        if counter_bits is not None and counter_bits < 2:
            raise ValueError("counter_bits must be >= 2")
        pads = None
        if scheme in ENCRYPTED_SCHEMES:
            if not key:
                raise ValueError(
                    f"scheme {scheme!r} encrypts and needs a non-empty key"
                )
            if counter_bits is not None:
                pads = VersionedPadSource(key, pad_kind)
            else:
                pads = make_pad_source(pad_kind, key)
        self._pads = pads
        self._counter_limit = (
            (1 << counter_bits) - 1 if counter_bits is not None else None
        )
        self.scheme = make_scheme(
            scheme,
            pads,
            line_bytes=line_bytes,
            word_bytes=word_bytes,
            epoch_interval=epoch_interval,
            fnw_group_bits=fnw_group_bits,
        )
        self.line_bytes = line_bytes
        self.pcm = PcmArray(
            line_bytes=line_bytes,
            meta_bits=self.scheme.metadata_bits_per_line,
            track_per_line=False,
        )
        if wear_leveling == "none":
            self._startgap = None
            self._leveler = NoWearLeveler()
        elif wear_leveling in ("hwl", "hwl-hashed"):
            self._startgap = StartGap(region_lines, gap_write_interval)
            self._leveler = HorizontalWearLeveler(
                self._startgap,
                self.pcm.bits_per_line,
                hashed=(wear_leveling == "hwl-hashed"),
            )
        else:
            raise ValueError(f"unknown wear_leveling {wear_leveling!r}")
        self._region_lines = region_lines
        self._merkle = (
            MerkleTree(region_lines, key=key or b"merkle") if integrity else None
        )
        self._merkle_leaves: dict[int, int] = {}
        self._guard = (
            ThrottlingGuard(WriteStreamDetector()) if attack_detection else None
        )
        self.stats = ControllerStats()

    def _leaf_for(self, address: int) -> int:
        """Merkle leaf index for an address (assigned on first touch)."""
        leaf = self._merkle_leaves.get(address)
        if leaf is None:
            leaf = len(self._merkle_leaves)
            if leaf >= self._region_lines:
                raise ValueError(
                    "integrity tree is full: raise region_lines above the "
                    f"number of distinct lines ({self._region_lines})"
                )
            self._merkle_leaves[address] = leaf
        return leaf

    # -- data path ----------------------------------------------------------

    def write(self, address: int, data: bytes) -> WriteOutcome | None:
        """Write a full line; installs it on first touch.

        Returns the :class:`WriteOutcome` for a writeback, or ``None`` for
        an install (initial encryption is not a writeback, section 3.1).
        """
        if address not in self.scheme._lines:
            self.scheme.install(address, data)
            if self._merkle is not None:
                self._merkle.update(
                    self._leaf_for(address), self.scheme.stored(address).counter
                )
            self.stats.installs += 1
            return None
        outcome = self.scheme.write(address, data)
        if (
            self._counter_limit is not None
            and self.scheme.stored(address).counter >= self._counter_limit
        ):
            self._rekey_line(address)
        if self._merkle is not None:
            self._merkle.update(
                self._leaf_for(address), self.scheme.stored(address).counter
            )
        if self._guard is not None:
            self.stats.throttle_slots += self._guard.on_write(address)
        rotation = self._leveler.rotation(address % self._region_lines)
        self.pcm.apply_write(outcome, rotation=rotation)
        if self._startgap is not None:
            self._startgap.on_write()
        self.stats.writes += 1
        self.stats.total_flips += outcome.total_flips
        self.stats.total_slots += slots_for_write(outcome, 8 * self.line_bytes)
        return outcome

    def _rekey_line(self, address: int) -> None:
        """Re-encrypt a counter-saturated line under a fresh key version."""
        plaintext = self.scheme.read(address)
        old = self.scheme.stored(address)
        assert isinstance(self._pads, VersionedPadSource)
        self._pads.bump_version(address)
        new = self.scheme.install(address, plaintext)  # counter resets to 0
        self.stats.rekeys += 1
        self.stats.rekey_flips += bitops.bit_flips(old.data, new.data) + (
            meta_flips(old.meta, new.meta) if old.meta.size == new.meta.size else 0
        )

    def read(self, address: int) -> bytes:
        """Read (and decrypt) a line.

        With integrity enabled, the line's counter — which lives in
        untrusted memory — is verified against the on-chip Merkle root
        before the pad is regenerated; a mismatch (counter-reset attack)
        raises :class:`~repro.security.merkle.IntegrityError`.
        """
        if self._merkle is not None:
            expected = self._merkle.read_or_raise(self._leaf_for(address))
            actual = self.scheme.stored(address).counter
            self.stats.integrity_checks += 1
            if expected != actual:
                raise IntegrityError(
                    f"line {address:#x}: counter {actual} does not match "
                    f"the Merkle-verified value {expected} (tampering?)"
                )
        self.stats.reads += 1
        return self.scheme.read(address)

    @property
    def under_attack(self) -> bool:
        """Endurance-attack detector verdict for the last window."""
        return (
            self._guard is not None
            and self._guard.detector.under_attack
        )

    def contains(self, address: int) -> bool:
        return address in self.scheme._lines

    # -- reporting ----------------------------------------------------------

    def wear_summary(self) -> WearSummary:
        return self.pcm.summary()

    def lifetime(self) -> LifetimeReport:
        """Lifetime normalized to the encrypted-memory baseline."""
        summary = self.pcm.summary()
        return lifetime_report(summary.position_writes, summary.total_writes)
