"""DEUCE: Write-Efficient Encryption for Non-Volatile Memories.

A full reproduction of Young, Nair & Qureshi (ASPLOS 2015): dual-counter
encryption (DEUCE) and every substrate the paper's evaluation relies on — a
from-scratch AES, counter-mode one-time pads, DCW/FNW/BLE baselines,
DynDEUCE and the combined schemes, a per-bit PCM wear model, Start-Gap and
Horizontal Wear Leveling, SPEC-like workload models, and bank-level
performance/energy models.

Quick start::

    from repro import SecureMemoryController

    mc = SecureMemoryController(scheme="deuce", key=b"0123456789abcdef")
    mc.write(0x40, b"hello world".ljust(64, b"\\0"))
    assert mc.read(0x40).startswith(b"hello world")

Paper figures::

    from repro.sim.experiments import fig10_scheme_comparison
    print(fig10_scheme_comparison().render())

Sessions (ledger-recording runs/sweeps/experiments; the stable facade
behind the CLI and the ``deuce-sim serve`` job service)::

    from repro import Session, SimConfig
    result = Session().run(SimConfig("mcf", "deuce", n_writes=10_000))
"""

from repro.api import Session
from repro.memory.controller import ControllerStats, SecureMemoryController
from repro.schemes import SCHEME_NAMES, WriteOutcome, WriteScheme, make_scheme
from repro.sim import RunResult, SimConfig, run
from repro.workloads import PROFILES, WORKLOAD_NAMES, generate_trace

__version__ = "1.0.0"

__all__ = [
    "PROFILES",
    "SCHEME_NAMES",
    "WORKLOAD_NAMES",
    "ControllerStats",
    "RunResult",
    "SecureMemoryController",
    "Session",
    "SimConfig",
    "WriteOutcome",
    "WriteScheme",
    "__version__",
    "generate_trace",
    "make_scheme",
    "run",
]
