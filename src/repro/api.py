"""``repro.api`` — the stable programmatic facade over the simulator.

One :class:`Session` is the single config-resolution path shared by the CLI
(``deuce-sim run/experiment``), the job service (``deuce-sim serve``),
experiments, and benchmarks: it owns the run ledger, the observability
options, and the worker conventions, so none of those callers wires up
``RunLedger``/``Instruments``/``PhaseAccumulator`` plumbing themselves.

.. code-block:: python

    from repro.api import ObsOptions, Session, SimConfig

    session = Session()                       # ledger on (.deuce-runs/)
    result = session.run(SimConfig("mcf", "deuce", n_writes=10_000))
    print(result.summary_row(), result.manifest.run_id)

    results = session.sweep(
        [SimConfig("mcf", s) for s in ("deuce", "encr-fnw")], workers=2
    )
    fig10 = session.experiment("fig10", n_writes=2_000, workers=2)

Everything exported in :data:`__all__` is covered by the README's "Python
API" section and is the surface the service's JSON API is a transport for.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.obs.context import TraceContext
from repro.obs.instruments import RunAborted
from repro.obs.ledger import (
    RunLedger,
    RunManifest,
    build_manifest,
    new_run_id,
)
from repro.obs.progress import (
    DONE,
    HEARTBEAT,
    START,
    ProgressEvent,
    ProgressRenderer,
)
from repro.sim.checkpoint import (
    RUN_CHECKPOINT_DIRNAME,
    CheckpointError,
    SweepCheckpoint,
    load_run_checkpoint,
)
from repro.sim.config import ConfigError, SimConfig
from repro.sim.experiments import EXPERIMENTS, ExperimentResult
from repro.sim.parallel import (
    SweepCancelled,
    SweepCellFailed,
    resolve_workers,
)
from repro.sim.results import RunResult

__all__ = [
    "CheckpointError",
    "ConfigError",
    "ExperimentResult",
    "ObsOptions",
    "ProgressEvent",
    "ProgressRenderer",
    "RunAborted",
    "RunLedger",
    "RunManifest",
    "RunResult",
    "Session",
    "SimConfig",
    "SweepCancelled",
    "SweepCellFailed",
    "TraceContext",
    "resolve_workers",
]


@dataclass(frozen=True)
class ObsOptions:
    """Per-run observability outputs a :class:`Session` should produce.

    Attributes
    ----------
    metrics_out:
        Write end-of-run metrics (counters/timers) as JSONL to this path.
    trace_out:
        Stream pipeline spans/events as JSONL to this path.
    sample_interval:
        Snapshot run state into ``RunResult.series`` every N writes
        (``0`` = off; implied ~100 points when only ``series_out`` is set).
    series_out:
        Write the sampled time-series as CSV to this path.
    trace_context:
        Optional :class:`~repro.obs.context.TraceContext` naming this
        run's lane in a larger correlated trace; stamped into the trace
        file's meta record so offline tools can parent the run under its
        job/sweep span and align it on the wall clock.
    per_write_spans:
        With ``trace_out`` set, emit one span per write (full-fidelity
        traces; forces the serial write loop).  The job service sets this
        False so traced runs keep the chunked fast path with one span per
        chunk.
    """

    metrics_out: str | None = None
    trace_out: str | None = None
    sample_interval: int = 0
    series_out: str | None = None
    trace_context: TraceContext | None = None
    per_write_spans: bool = True

    @property
    def any(self) -> bool:
        return bool(
            self.metrics_out
            or self.trace_out
            or self.sample_interval
            or self.series_out
        )


#: Shared all-off options (the default for ledger-only sessions).
NO_OBS = ObsOptions()


class Session:
    """A configured entry point for runs, sweeps, and experiments.

    Parameters
    ----------
    ledger:
        ``True`` (default) opens the default ledger (``$DEUCE_RUNS_DIR`` or
        ``./.deuce-runs``), ``False``/``None`` disables recording, a
        :class:`~repro.obs.ledger.RunLedger` is used as-is, and a string or
        path opens a ledger rooted there.
    runs_dir:
        Ledger directory used when ``ledger`` is ``True``.
    obs:
        Default :class:`ObsOptions` for every :meth:`run` (overridable
        per call).
    label:
        Default manifest label stamped on recorded runs.
    """

    def __init__(
        self,
        *,
        ledger: RunLedger | bool | str | None = True,
        runs_dir: str | None = None,
        obs: ObsOptions | None = None,
        label: str = "",
    ) -> None:
        if isinstance(ledger, RunLedger):
            self.ledger: RunLedger | None = ledger
        elif isinstance(ledger, (str, bytes)) or hasattr(ledger, "__fspath__"):
            self.ledger = RunLedger(ledger)  # type: ignore[arg-type]
        elif ledger:
            self.ledger = RunLedger(runs_dir)
        else:
            self.ledger = None
        self.obs = obs if obs is not None else NO_OBS
        self.label = label

    # -- config resolution ---------------------------------------------------

    @staticmethod
    def config(config: SimConfig | dict) -> SimConfig:
        """Normalize a config argument (dicts go through ``from_dict``)."""
        if isinstance(config, SimConfig):
            return config
        return SimConfig.from_dict(config)

    def _resolve_instruments(
        self,
        config: SimConfig,
        obs: ObsOptions,
        progress: Callable[[ProgressEvent], None] | None,
        should_stop: Callable[[], bool] | None,
    ):
        """The run's observability bundle from session state.

        Returns ``(instruments, metrics, tracer, phases)``; all ``None``
        when nothing would observe the run, so the runner takes its
        uninstrumented fast path.  With the ledger on, a metrics registry
        and a phase-accumulating tracer are always live: the manifest needs
        per-phase wall times and summary counters even when no output path
        was given.
        """
        ledger_on = self.ledger is not None
        sample_interval = obs.sample_interval
        if obs.series_out and not sample_interval:
            # A series was requested without a cadence: default ~100 points.
            sample_interval = max(1, config.n_writes // 100)
        if not (
            ledger_on
            or obs.metrics_out
            or obs.trace_out
            or sample_interval
            or progress is not None
            or should_stop is not None
        ):
            return None, None, None, None
        from repro.obs import Instruments, JsonlSink, MetricsRegistry, Tracer
        from repro.obs.ledger import PhaseAccumulator
        from repro.obs.profile import PhaseProfile

        metrics = (
            MetricsRegistry() if (obs.metrics_out or ledger_on) else None
        )
        phases = None
        tracer = None
        if obs.trace_out or ledger_on:
            sink = None
            if obs.trace_out:
                meta = None
                if obs.trace_context is not None:
                    meta = {**obs.trace_context.to_dict(), "lane": "run"}
                sink = JsonlSink(obs.trace_out, meta=meta)
            if ledger_on:
                phases = PhaseAccumulator(inner=sink)
                sink = phases
            tracer = Tracer(sink)
        instruments = Instruments(
            sample_interval=sample_interval, abort=should_stop
        )
        if metrics is not None:
            # Per-phase write-path attribution rides on timestamps the
            # chunked loop already takes; cheap enough to keep on for any
            # recorded run.
            instruments.profile = PhaseProfile()
        if metrics is not None:
            instruments.metrics = metrics
        if tracer is not None:
            instruments.tracer = tracer
            # Write-granular spans only when a trace file was asked for
            # (and the caller did not opt into chunk-level spans); the
            # ledger's phase totals aggregate identically from the chunked
            # loop's one-span-per-chunk stream, so ledger-only runs keep
            # the batched fast path.
            instruments.per_write_spans = (
                bool(obs.trace_out) and obs.per_write_spans
            )
        return instruments, metrics, tracer, phases

    # -- checkpoint plumbing -------------------------------------------------

    def checkpoint_location(self, resume_from: str) -> tuple[Path, str]:
        """Resolve a resume token to ``(checkpoint dir, run id)``.

        Accepts a ledger run id (the checkpoint lives at
        ``<runs_dir>/<run_id>/checkpoint``) or a path to a checkpoint
        directory.  The run id is recovered from the path when it sits in
        this session's ledger — a resumed run then records its manifest
        under the id the interrupted run had already claimed — and is empty
        otherwise.
        """
        path = Path(resume_from)
        if (path / "checkpoint.json").is_file():
            run_id = ""
            if (
                self.ledger is not None
                and path.name == RUN_CHECKPOINT_DIRNAME
                and path.resolve().parent.parent == self.ledger.root.resolve()
            ):
                run_id = path.resolve().parent.name
            return path, run_id
        if self.ledger is not None:
            candidate = (
                self.ledger.run_dir(str(resume_from)) / RUN_CHECKPOINT_DIRNAME
            )
            if (candidate / "checkpoint.json").is_file():
                return candidate, str(resume_from)
        raise CheckpointError(
            f"no run checkpoint found for {resume_from!r} (expected a run id "
            f"recorded in {self.ledger.root if self.ledger else 'a ledger'} "
            "or a directory containing checkpoint.json)"
        )

    def sweep_checkpoint(self, sweep_id: str) -> SweepCheckpoint:
        """The durable cell record for ``sweep_id`` under this ledger.

        Sweep checkpoints live at ``<runs_dir>/sweeps/<sweep_id>/``;
        re-running a sweep with the same id restores its completed cells.
        """
        if self.ledger is None:
            raise CheckpointError(
                "sweep checkpoints need a ledger (Session(ledger=...))"
            )
        return SweepCheckpoint(self.ledger.root / "sweeps" / sweep_id)

    # -- entry points --------------------------------------------------------

    def run(
        self,
        config: SimConfig | dict | None = None,
        *,
        label: str | None = None,
        obs: ObsOptions | None = None,
        trace=None,
        progress: Callable[[ProgressEvent], None] | None = None,
        should_stop: Callable[[], bool] | None = None,
        checkpoint_every: int = 0,
        checkpoint_dir: str | Path | None = None,
        resume_from: str | None = None,
    ) -> RunResult:
        """Execute one simulation; record it when the ledger is on.

        The returned :class:`RunResult` carries ``result.manifest`` when a
        ledger manifest was recorded.  ``progress`` receives single-cell
        :class:`ProgressEvent` records (start/heartbeats/done);
        ``should_stop`` is polled during the run and raises
        :class:`~repro.obs.instruments.RunAborted` when it goes true.

        ``checkpoint_every=N`` snapshots all mutable simulation state every
        N writes into ``checkpoint_dir`` — allocated as
        ``<runs_dir>/<run_id>/checkpoint`` (the run id is pinned up front
        and reused for the final manifest) when the ledger is on.
        ``resume_from`` (a run id or checkpoint directory, see
        :meth:`checkpoint_location`) restores that state and continues the
        run bit-identically to an uninterrupted one; ``config`` may then be
        omitted (it is read from the checkpoint) and further checkpoints
        land in the same directory.
        """
        run_id = ""
        checkpoint = None
        if resume_from is not None:
            ck_dir, run_id = self.checkpoint_location(resume_from)
            checkpoint = load_run_checkpoint(ck_dir)
            if config is None:
                config = checkpoint.config
            if checkpoint_dir is None:
                checkpoint_dir = ck_dir
        if config is None:
            raise ConfigError("config is required unless resume_from is set")
        config = self.config(config)
        if checkpoint_every > 0 and checkpoint_dir is None:
            if self.ledger is None:
                raise CheckpointError(
                    "checkpoint_every needs a ledger to allocate the "
                    "checkpoint directory (or pass checkpoint_dir=)"
                )
            run_id = new_run_id()
            checkpoint_dir = (
                self.ledger.run_dir(run_id) / RUN_CHECKPOINT_DIRNAME
            )
        obs = obs if obs is not None else self.obs
        instruments, metrics, tracer, phases = self._resolve_instruments(
            config, obs, progress, should_stop
        )
        if progress is not None:
            def _event(kind: str, writes_done: int) -> ProgressEvent:
                return ProgressEvent(
                    kind=kind,
                    cell=0,
                    n_cells=1,
                    writes_done=writes_done,
                    n_writes=config.n_writes,
                    workload=config.workload,
                    scheme=config.scheme,
                )

            progress(_event(START, 0))
            instruments.heartbeat = lambda done, total: progress(
                _event(HEARTBEAT, done)
            )
        from repro.sim.runner import run as _run

        try:
            result = _run(
                config,
                trace=trace,
                instruments=instruments,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                resume_from=checkpoint,
            )
        finally:
            if tracer is not None:
                tracer.close()
        if metrics is not None and obs.metrics_out:
            metrics.dump_jsonl(obs.metrics_out)
        if result.series is not None and obs.series_out:
            from repro.analysis.export import export_series_csv

            export_series_csv(result.series, obs.series_out)
        if self.ledger is not None:
            artifact_text: dict[str, str] = {}
            if metrics is not None:
                artifact_text["metrics.jsonl"] = "".join(
                    json.dumps(snap, separators=(",", ":")) + "\n"
                    for snap in metrics.snapshot()
                )
            if result.series is not None:
                artifact_text["series.csv"] = _series_csv_text(result.series)
            if result.profile:
                artifact_text["profile.json"] = (
                    json.dumps(result.profile, indent=2) + "\n"
                )
            artifacts = {}
            if obs.trace_out:
                artifacts["trace"] = obs.trace_out
            result.manifest = self.ledger.record_result(
                result,
                config,
                kind="run",
                label=self.label if label is None else label,
                phases=phases.totals if phases is not None else None,
                artifacts=artifacts,
                artifact_text=artifact_text,
                run_id=run_id,
            )
        if progress is not None:
            progress(_event(DONE, config.n_writes))
        return result

    def sweep(
        self,
        configs: Sequence[SimConfig | dict],
        *,
        workers: int | None = None,
        progress: Callable[[ProgressEvent], None] | None = None,
        heartbeat_every: int = 0,
        label: str | None = None,
        should_stop: Callable[[], bool] | None = None,
        retries: int = 0,
        retry_backoff_s: float = 0.5,
        sweep_id: str | None = None,
        checkpoint: "SweepCheckpoint | str | None" = None,
        trace_dir: str | Path | None = None,
        trace_context: TraceContext | None = None,
        executor=None,
    ) -> list[RunResult]:
        """Run a batch of configs through the parallel sweep engine.

        ``workers`` follows :func:`~repro.sim.parallel.resolve_workers`
        conventions (``None``/``0`` auto, ``1`` serial).  With the ledger
        on, every cell is recorded as a ``sweep-cell`` manifest (attached
        as ``result.manifest``) the moment it finishes.  Results are
        bit-identical to calling :meth:`run` per config.

        ``retries`` gives each cell a retry budget (capped exponential
        backoff; crashed workers are detected and their cells requeued).
        ``sweep_id`` makes the sweep durable: completed cells are fsynced
        to ``<runs_dir>/sweeps/<sweep_id>/cells.jsonl``, and re-running
        with the same id restores them and runs only the missing cells
        (``checkpoint`` passes an explicit
        :class:`~repro.sim.checkpoint.SweepCheckpoint` or directory
        instead, e.g. for ledger-less sessions).

        ``trace_dir`` turns on correlated tracing: a ``sweep.jsonl``
        parent lane plus one ``cell-<i>.jsonl`` lane per worker cell land
        there, exportable as one Chrome trace via ``deuce-sim trace
        export``.  ``trace_context`` parents the sweep under an outer
        span (the job service passes its per-job context); omitted, the
        sweep becomes a root trace.

        ``executor`` swaps the local process pool for another scheduler
        with the same ``run_suite`` contract — in practice a
        :class:`repro.service.coordinator.FleetExecutor` sharding cells
        across remote ``deuce-sim serve`` workers.  Ledger recording,
        checkpoints, tracing, retries, and cancellation behave
        identically either way, which is what makes a fleet sweep's
        merged ledger/checkpoint interchangeable with a local one
        (``workers`` is a pool knob and is ignored with an executor).
        """
        from repro.obs.tracing import JsonlSink, Tracer
        from repro.sim.parallel import SweepTracing, run_suite_parallel

        if sweep_id is not None:
            if checkpoint is not None:
                raise CheckpointError(
                    "pass either sweep_id or checkpoint, not both"
                )
            checkpoint = self.sweep_checkpoint(sweep_id)
        resolved = [self.config(c) for c in configs]
        tracing = None
        sweep_tracer = None
        if trace_dir is not None:
            trace_dir = Path(trace_dir)
            trace_dir.mkdir(parents=True, exist_ok=True)
            ctx = (
                trace_context.child()
                if trace_context is not None
                else TraceContext.new()
            )
            sink = JsonlSink(
                trace_dir / "sweep.jsonl",
                meta={**ctx.to_dict(), "lane": "sweep"},
            )
            sweep_tracer = Tracer(sink)
            tracing = SweepTracing(
                dir=trace_dir, context=ctx, tracer=sweep_tracer
            )
        try:
            if sweep_tracer is not None:
                span = sweep_tracer.span("sweep", cells=len(resolved))
            else:
                from repro.obs.tracing import NULL_TRACER

                span = NULL_TRACER.span("sweep")
            with span:
                if executor is not None:
                    return executor.run_suite(
                        resolved,
                        progress=progress,
                        heartbeat_every=heartbeat_every,
                        ledger=self.ledger,
                        ledger_label=self.label if label is None else label,
                        should_stop=should_stop,
                        retries=retries,
                        retry_backoff_s=retry_backoff_s,
                        checkpoint=checkpoint,
                        tracing=tracing,
                    )
                return run_suite_parallel(
                    resolved,
                    max_workers=workers,
                    progress=progress,
                    heartbeat_every=heartbeat_every,
                    ledger=self.ledger,
                    ledger_label=self.label if label is None else label,
                    should_stop=should_stop,
                    retries=retries,
                    retry_backoff_s=retry_backoff_s,
                    checkpoint=checkpoint,
                    tracing=tracing,
                )
        finally:
            if sweep_tracer is not None:
                sweep_tracer.close()

    def experiment(
        self,
        name: str,
        *,
        n_writes: int | None = None,
        workers: int | None = 1,
        progress: Callable[[ProgressEvent], None] | None = None,
        should_stop: Callable[[], bool] | None = None,
        **kwargs: object,
    ) -> ExperimentResult:
        """Reproduce one paper exhibit; record it when the ledger is on.

        ``name`` must be a key of
        :data:`~repro.sim.experiments.EXPERIMENTS`.  Arguments the chosen
        experiment does not accept (``table2`` takes none) are dropped, so
        callers can thread uniform knobs.  The returned result carries
        ``result.manifest`` when recorded.
        """
        fn = EXPERIMENTS.get(name)
        if fn is None:
            raise ConfigError(
                f"unknown experiment {name!r}; choose from "
                + ", ".join(EXPERIMENTS)
            )
        call_kwargs: dict[str, object] = {
            "max_workers": workers,
            "progress": progress,
            "ledger": self.ledger,
            "should_stop": should_stop,
            **kwargs,
        }
        if n_writes is not None:
            call_kwargs["n_writes"] = n_writes
        accepted = inspect.signature(fn).parameters
        call_kwargs = {
            k: v for k, v in call_kwargs.items() if k in accepted
        }
        result = fn(**call_kwargs)
        if self.ledger is not None:
            summary = {
                key: value
                for key, value in (result.averages or {}).items()
                if isinstance(value, (int, float))
            }
            manifest = build_manifest(
                kind="experiment",
                label=name,
                n_writes=int(call_kwargs.get("n_writes", 0) or 0),
                wall_time_s=result.wall_time_s,
                summary=summary,
            )
            self.ledger.record(
                manifest,
                artifact_text={"result.txt": result.render() + "\n"},
            )
            result.manifest = manifest
        return result


def _series_csv_text(series) -> str:
    """A run's sampled time-series rendered as CSV text (ledger artifact)."""
    import csv
    import io

    rows = series.as_rows()
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=list(rows[0]) if rows else ["write_index"]
    )
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()
