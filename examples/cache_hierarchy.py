#!/usr/bin/env python3
"""From CPU accesses to PCM writebacks: the whole Table-1 pipeline.

The paper's writebacks are L4 evictions.  This example builds the pipeline
from first principles: a synthetic CPU access stream flows through a
write-back cache hierarchy; whatever the last level evicts becomes the
writeback trace; the trace is characterized and then costed under the
encryption schemes — showing that the *shape of the application's stores*
(not calibration) is what decides DEUCE's win.

Run:  python examples/cache_hierarchy.py
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.sim import SimConfig, run
from repro.workloads import analyze_trace, recommend_scheme
from repro.workloads.cpu import CpuWorkload, collect_writebacks


def pipeline(pattern: str) -> None:
    workload = CpuWorkload(
        pattern=pattern, working_set_bytes=256 * 1024, seed=3
    )
    trace, hierarchy = collect_writebacks(workload, n_accesses=40_000)

    print(f"--- {pattern} access pattern ---")
    print("cache behaviour:")
    for level in hierarchy.levels:
        s = level.stats
        print(
            f"  {level.name}: {s.accesses} accesses, "
            f"{100 * s.hit_rate:.1f}% hits, {s.writebacks} writebacks out"
        )
    print(f"PCM sees {trace.n_writes} writebacks")

    stats = analyze_trace(trace)
    print(
        f"writeback character: {stats.avg_words_modified:.1f} words/write, "
        f"{stats.avg_bits_per_modified_word:.1f} bits/word, "
        f"{stats.avg_blocks_touched:.1f} AES blocks touched"
    )
    scheme, _ = recommend_scheme(stats)
    print(f"analyzer recommends: {scheme}")

    rows = []
    for candidate in ("encr-dcw", "deuce", "dyndeuce"):
        result = run(
            SimConfig(trace.profile_name, candidate, n_writes=trace.n_writes),
            trace=trace,
        )
        rows.append(
            {"scheme": candidate, "flips_pct": round(result.avg_flips_pct, 1)}
        )
    print(render_table(["scheme", "flips_pct"], rows,
                       title="cost on the organic trace:"))
    print()


def main() -> None:
    print("== CPU -> caches -> PCM writebacks ==\n")
    pipeline("object")   # header updates: sparse writebacks
    pipeline("stream")   # memcpy-style: dense writebacks
    print(
        "Takeaway: cache write-back coalescing preserves store sparsity —\n"
        "object-update workloads reach the PCM as sparse writebacks that\n"
        "DEUCE re-encrypts cheaply, streaming fills arrive dense and pay\n"
        "the avalanche no matter what."
    )


if __name__ == "__main__":
    main()
