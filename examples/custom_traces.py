#!/usr/bin/env python3
"""Bring your own workload: characterize a custom write stream.

The library's traces are just (address, new line contents) sequences, so any
application's write stream can be analyzed and simulated.  This example
builds two synthetic application traces by hand — an append-only log and an
in-place B-tree-ish node updater — characterizes them with the trace
analyzer, lets it recommend a scheme, and then verifies the recommendation
by simulating the candidates on the exact same trace.

Run:  python examples/custom_traces.py
"""

from __future__ import annotations

import random

from repro.analysis.tables import render_table
from repro.sim import SimConfig, run
from repro.workloads import Trace, WriteRecord, analyze_trace, recommend_scheme

LINE = 64


def log_structured_trace(n_writes: int = 2000, seed: int = 0) -> Trace:
    """Append-only log: each line is filled once, sequentially, with fresh
    payloads — every word of the line changes when it is written."""
    rng = random.Random(seed)
    n_lines = 256
    initial = {addr: bytes(LINE) for addr in range(n_lines)}
    records = []
    for i in range(n_writes):
        addr = i % n_lines
        payload = bytes(rng.randrange(256) for _ in range(LINE))
        records.append(WriteRecord(addr, payload))
    return Trace("applog", seed, LINE, initial, records)


def btree_node_trace(n_writes: int = 2000, seed: int = 0) -> Trace:
    """In-place index updates: each 64-byte "node" has a hot header (keys
    count, version) and occasionally gets one 8-byte pointer swapped."""
    rng = random.Random(seed)
    n_lines = 256
    lines = {
        addr: bytearray(rng.randrange(256) for _ in range(LINE))
        for addr in range(n_lines)
    }
    initial = {addr: bytes(data) for addr, data in lines.items()}
    records = []
    for _ in range(n_writes):
        addr = rng.randrange(n_lines)
        node = lines[addr]
        # Bump the 2-byte version counter in the header.
        version = int.from_bytes(node[0:2], "little") + 1
        node[0:2] = version.to_bytes(2, "little", signed=False)
        if rng.random() < 0.3:  # occasionally replace one pointer slot
            slot = 8 + 8 * rng.randrange(7)
            node[slot: slot + 8] = rng.randbytes(8)
        records.append(WriteRecord(addr, bytes(node)))
    return Trace("btree", seed, LINE, initial, records)


def study(name: str, trace: Trace) -> None:
    print(f"--- {name} ({trace.n_writes} writebacks) ---")
    stats = analyze_trace(trace)
    print(render_table(
        list(stats.summary()), [stats.summary()], title="characterization:"
    ))
    scheme, why = recommend_scheme(stats)
    print(f"recommended scheme: {scheme}  ({why})\n")

    rows = []
    for candidate in ("encr-dcw", "encr-fnw", "deuce", "dyndeuce"):
        result = run(
            SimConfig(trace.profile_name, candidate, n_writes=trace.n_writes),
            trace=trace,
        )
        rows.append(
            {
                "scheme": candidate,
                "flips_pct": round(result.avg_flips_pct, 1),
                "slots": round(result.avg_slots_per_write, 2),
            }
        )
    print(render_table(["scheme", "flips_pct", "slots"], rows,
                       title="measured on this exact trace:"))
    best = min(rows, key=lambda r: r["flips_pct"])
    print(f"cheapest encrypted scheme: {best['scheme']}\n")


def main() -> None:
    print("== Custom-trace characterization ==\n")
    study("append-only log", log_structured_trace())
    study("B-tree node updates", btree_node_trace())
    print(
        "Takeaway: the analyzer's density heuristic predicts the simulation\n"
        "outcome — dense streams want FNW's bound, sparse in-place updates\n"
        "want DEUCE."
    )


if __name__ == "__main__":
    main()
