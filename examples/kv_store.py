#!/usr/bin/env python3
"""A key-value store backed by secure PCM — downstream-usage example.

Shows how an application layer sits on top of :class:`SecureMemoryController`:
a toy persistent KV store serializes fixed-size records into 64-byte lines,
every ``put`` becomes a line writeback through DEUCE, and the store's access
pattern (update a value field, bump a version counter) is exactly the
sparse-write behaviour DEUCE thrives on.

Also demonstrates the production-hardening knobs: Merkle integrity (a
tampered counter is caught on read) and the endurance-attack detector (a
hot-key hammering loop gets flagged).

Run:  python examples/kv_store.py
"""

from __future__ import annotations

import random
import struct

from repro import SecureMemoryController
from repro.security.merkle import IntegrityError

LINE = 64
KEY_BYTES = 16
VALUE_BYTES = 36
RECORD = struct.Struct(f"<{KEY_BYTES}s{VALUE_BYTES}sIQ")  # key, value, version, pad
assert RECORD.size <= LINE


class SecureKVStore:
    """Fixed-slot KV store over an encrypted PCM controller.

    Keys hash to line slots (open addressing, linear probing); each record
    carries a version counter so updates modify only the value field and
    the version — a classic sparse-writeback pattern.
    """

    def __init__(self, capacity: int = 256, **controller_kwargs) -> None:
        self.capacity = capacity
        self.memory = SecureMemoryController(**controller_kwargs)
        self._keys: dict[bytes, int] = {}  # key -> slot (the "index")

    def _slot_address(self, slot: int) -> int:
        return slot * LINE

    def _encode(self, key: bytes, value: bytes, version: int) -> bytes:
        record = RECORD.pack(
            key.ljust(KEY_BYTES, b"\0"), value.ljust(VALUE_BYTES, b"\0"),
            version, 0,
        )
        return record.ljust(LINE, b"\0")

    def put(self, key: bytes, value: bytes) -> None:
        if len(key) > KEY_BYTES or len(value) > VALUE_BYTES:
            raise ValueError("key/value too large for the record format")
        slot = self._keys.get(key)
        if slot is None:
            if len(self._keys) >= self.capacity:
                raise RuntimeError("store full")
            slot = len(self._keys)
            self._keys[key] = slot
            version = 0
        else:
            _, _, version = self.get_with_version(key)
            version += 1
        self.memory.write(
            self._slot_address(slot), self._encode(key, value, version)
        )

    def get_with_version(self, key: bytes) -> tuple[bytes, bytes, int]:
        slot = self._keys[key]
        line = self.memory.read(self._slot_address(slot))
        raw_key, raw_value, version, _ = RECORD.unpack(line[: RECORD.size])
        return raw_key.rstrip(b"\0"), raw_value.rstrip(b"\0"), version

    def get(self, key: bytes) -> bytes:
        return self.get_with_version(key)[1]


def main() -> None:
    print("== Secure KV store on DEUCE-encrypted PCM ==\n")
    store = SecureKVStore(
        capacity=256,
        scheme="deuce",
        key=b"kv-store-secret-key-not-for-prod",
        wear_leveling="hwl",
        integrity=True,
        attack_detection=True,
        region_lines=512,
    )

    # Normal operation: a working set of users whose balances churn.
    rng = random.Random(7)
    users = [f"user:{i:04d}".encode() for i in range(100)]
    for user in users:
        store.put(user, b"balance=0")
    for _ in range(3000):
        user = rng.choice(users)
        store.put(user, f"balance={rng.randrange(10_000)}".encode())

    sample = users[3]
    value, version = store.get(sample), store.get_with_version(sample)[2]
    print(f"{sample.decode()}: {value.decode()} (version {version})")
    stats = store.memory.stats
    flips_pct = 100 * stats.avg_flips_per_write / (8 * LINE)
    print(
        f"{stats.writes} writebacks, {flips_pct:.1f}% of line bits flipped "
        "per write (counter-mode alone would flip 50%)"
    )

    # Integrity: a repairman resets a counter in the stolen DIMM.
    addr = store._slot_address(store._keys[sample])
    store.memory.scheme._lines[addr].counter = 0
    try:
        store.get(sample)
    except IntegrityError as exc:
        print(f"\ntamper attempt caught by the Merkle tree:\n  {exc}")
    # Repair the demo state (put() reads before writing).
    store.memory.scheme._lines[addr].counter = (
        store.memory._merkle.read_or_raise(store.memory._leaf_for(addr))
    )

    # Endurance attack: a hostile client hammers one key.
    for _ in range(5000):
        store.put(b"user:0000", b"balance=9999")
    print(
        f"\nhot-key hammering flagged: under_attack={store.memory.under_attack}, "
        f"{store.memory.stats.throttle_slots} throttle slots imposed"
    )


if __name__ == "__main__":
    main()
