#!/usr/bin/env python3
"""Attack demonstrations: why the counter, and why DEUCE is still safe.

Walks the paper's threat models (section 2) against the three encryption
configurations of Figure 2, then audits DEUCE's dual-counter write path for
pad reuse — the invariant its security argument rests on (section 4.3.5).

Run:  python examples/attack_demos.py
"""

from __future__ import annotations

import random

from repro.crypto.pads import Blake2PadSource
from repro.memory import bitops
from repro.schemes.deuce import Deuce
from repro.security import (
    AddressTweakedMemory,
    BusSnooper,
    CounterModeMemory,
    CounterResetMemory,
    GlobalKeyMemory,
    audit_deuce_write_path,
)
from repro.workloads.generator import WriteRecord

KEY = b"attack-demo-key!"
SECRET = b"SSN:078-05-1120 " * 4  # the sensitive line contents


def stolen_dimm_demo(pads) -> None:
    print("--- Stolen-DIMM dictionary attack (Figure 2a vs 2b) ---")
    weak = GlobalKeyMemory(pads)
    weak.write(0x000, SECRET)
    weak.write(0x040, SECRET)   # another process stores the same record
    weak.write(0x080, bytes(64))
    groups = weak.snapshot().equal_content_groups()
    print(f"global key: attacker finds equal-plaintext groups {groups}")

    tweaked = AddressTweakedMemory(pads)
    tweaked.write(0x000, SECRET)
    tweaked.write(0x040, SECRET)
    print(
        "address-tweaked: equal-plaintext groups "
        f"{tweaked.snapshot().equal_content_groups()} (attack defeated)\n"
    )


def bus_snoop_demo(pads) -> None:
    print("--- Bus-snooping attack (Figure 2b vs 2c) ---")
    for name, mem in (
        ("address-tweaked", AddressTweakedMemory(pads)),
        ("counter-mode", CounterModeMemory(pads)),
    ):
        snooper = BusSnooper()
        for value in (SECRET, bytes(64), SECRET):  # the secret comes back
            snooper.observe(0x40, mem.write(0x40, value))
        repeats = snooper.repeated_ciphertexts(0x40)
        verdict = "LEAKED value recurrence" if repeats else "nothing leaked"
        print(f"{name}: snooper sees {repeats} repeated ciphertexts -> {verdict}")
    print()


def pad_reuse_demo(pads) -> None:
    print("--- Counter-reset (pad reuse) attack, footnote 1 ---")
    mem = CounterResetMemory(pads)  # adversary pins the counter at zero
    snooper = BusSnooper()
    snooper.observe(0x40, mem.write(0x40, SECRET))
    snooper.observe(0x40, mem.write(0x40, bytes(64)))
    leaked = snooper.xor_pairs(0x40)[0]
    assert leaked == bitops.xor(SECRET, bytes(64))
    print("with a pinned counter, ciphertext XOR == plaintext XOR:")
    print(f"  attacker recovers: {leaked[:16]!r}...  (== the secret!)\n")


def deuce_audit_demo(pads) -> None:
    print("--- DEUCE pad-uniqueness audit (section 4.3.5) ---")
    rng = random.Random(1)
    scheme = Deuce(pads, epoch_interval=8)
    data = bytes(rng.randrange(256) for _ in range(64))
    scheme.install(0x40, data)
    records = []
    for _ in range(500):
        ba = bytearray(data)
        for _ in range(rng.randint(1, 3)):
            ba[2 * rng.randrange(32)] ^= rng.randrange(1, 256)
        data = bytes(ba)
        records.append(WriteRecord(0x40, data))
    auditor = audit_deuce_write_path(scheme, records)
    print(
        f"500 writebacks audited, {auditor.n_uses} (pad, plaintext) uses "
        f"recorded, violations: {len(auditor.violations)}"
    )
    print(
        "DEUCE never reuses a pad with different data: unmodified words\n"
        "keep their old ciphertext bit-for-bit, modified words always get\n"
        "a fresh leading-counter pad.\n"
    )


def main() -> None:
    pads = Blake2PadSource(KEY)
    print("== Threat-model walkthrough ==\n")
    stolen_dimm_demo(pads)
    bus_snoop_demo(pads)
    pad_reuse_demo(pads)
    deuce_audit_demo(pads)
    print(
        "Conclusion: per-line counters defeat both attack models, and\n"
        "DEUCE keeps that guarantee while writing ~2x fewer bits."
    )


if __name__ == "__main__":
    main()
