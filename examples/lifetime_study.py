#!/usr/bin/env python3
"""Lifetime study: why DEUCE needs Horizontal Wear Leveling.

Reproduces the section-5 story end to end on one workload:

1. show the per-bit-position write skew (Figure 12) — some cells take ~20x
   the average;
2. show that DEUCE's 2x flip reduction buys almost no lifetime without
   intra-line leveling (Figure 14's middle bar);
3. enable HWL and watch lifetime track the flip reduction, then translate
   it into absolute years for a 32 GB DIMM.

Run:  python examples/lifetime_study.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.charts import sparkline
from repro.sim import SimConfig, run
from repro.sim.runner import cached_trace
from repro.wear.lifetime import absolute_lifetime_years
from repro.workloads import get_profile
from repro.workloads.trace import generate_trace

WORKLOAD = "libq"
N_WRITES = 12_000


def main() -> None:
    print(f"== Lifetime study on {WORKLOAD} ==\n")

    # Step 1: the skew problem (Figure 12).
    r = run(SimConfig(WORKLOAD, "noencr-dcw", n_writes=N_WRITES))
    profile = r.wear.position_writes[:512].astype(float)
    profile /= profile.mean() or 1.0
    print("Writes per bit position, normalized to the average:")
    print(" ", sparkline(profile.tolist(), width=96))
    print(f"  hottest position gets {profile.max():.0f}x the average\n")

    # Step 2 & 3: lifetime with and without HWL, against the encrypted
    # baseline, all on the identical trace.
    wl_profile = replace(get_profile(WORKLOAD), working_set_lines=128)
    trace = generate_trace(wl_profile, N_WRITES, seed=0)
    configs = {
        "encrypted baseline": SimConfig(WORKLOAD, "encr-dcw", N_WRITES),
        "DEUCE (no HWL)": SimConfig(WORKLOAD, "deuce", N_WRITES),
        "DEUCE + HWL": SimConfig(
            WORKLOAD,
            "deuce",
            N_WRITES,
            wear_leveling="hwl",
            gap_write_interval=1,
            hwl_region_lines=16,
        ),
    }
    rates = {}
    flips = {}
    for name, config in configs.items():
        result = run(config, trace=trace)
        rates[name] = result.lifetime.max_position_rate
        flips[name] = result.avg_flips_pct
    base_rate = rates["encrypted baseline"]

    print("Scheme comparison (identical writeback stream):")
    for name in configs:
        lifetime = base_rate / rates[name]
        print(
            f"  {name:20s} flips {flips[name]:5.1f}%   "
            f"lifetime vs baseline {lifetime:5.2f}x"
        )

    # Absolute years for a 32 GB DIMM (Table 1) under a heavy write load.
    writes_per_second = 20e6  # aggregate writebacks/s hitting the DIMM
    n_lines = 32 * 2**30 // 64
    print("\nAbsolute lifetime at 20M writebacks/s over a 32 GB DIMM:")
    for name in configs:
        years = absolute_lifetime_years(
            rates[name], writes_per_second, n_memory_lines=n_lines
        )
        print(f"  {name:20s} {years:8.1f} years")

    print(
        "\nTakeaway: HWL costs no storage (the rotation amount is derived\n"
        "from Start-Gap's registers) and converts DEUCE's flip reduction\n"
        "into actual endurance."
    )


if __name__ == "__main__":
    main()
