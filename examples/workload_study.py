#!/usr/bin/env python3
"""Workload study: which scheme should your memory controller use?

The paper's motivating scenario — the write behaviour of the application
decides the winner.  This example runs three very different SPEC-like
workloads (a counter-chasing pointer workload, a streaming dense writer,
and a mixed one) through every scheme in the library and prints the bit
flips per write, the write-slot occupancy, and a recommendation.

Run:  python examples/workload_study.py
"""

from __future__ import annotations

from repro.analysis.charts import bar_chart
from repro.analysis.tables import render_table
from repro.schemes import SCHEME_NAMES
from repro.sim import SimConfig, run

WORKLOADS = {
    "libq": "counter-style updates, 2 hot words per line",
    "Gems": "streaming writer, touches every word",
    "milc": "mixed: stable footprint plus bursts",
}
N_WRITES = 3_000


def study(workload: str) -> list[dict[str, object]]:
    rows = []
    for scheme in SCHEME_NAMES:
        result = run(SimConfig(workload, scheme, n_writes=N_WRITES))
        rows.append(
            {
                "scheme": scheme,
                "flips_pct": round(result.avg_flips_pct, 1),
                "slots": round(result.avg_slots_per_write, 2),
                "meta_bits": result.meta_bits,
            }
        )
    return rows


def main() -> None:
    print("== Scheme selection study ==")
    for workload, description in WORKLOADS.items():
        print(f"\n--- {workload}: {description} ---")
        rows = study(workload)
        print(
            render_table(
                ["scheme", "flips_pct", "slots", "meta_bits"],
                rows,
                title=f"{N_WRITES} writebacks, paper-default geometry:",
            )
        )
        encrypted = [r for r in rows if not str(r["scheme"]).startswith("noencr")]
        best = min(encrypted, key=lambda r: r["flips_pct"])
        print(f"best encrypted scheme for {workload}: {best['scheme']}")

    print("\n== DEUCE flips by workload ==")
    values = {
        wl: run(SimConfig(wl, "deuce", n_writes=N_WRITES)).avg_flips_pct
        for wl in WORKLOADS
    }
    print(bar_chart(values, unit="%", title="modified bits per write"))
    print(
        "\nTakeaway: DEUCE wins when write footprints are sparse; "
        "DynDEUCE is the safe default because it falls back to FNW on "
        "dense writers at one extra metadata bit."
    )


if __name__ == "__main__":
    main()
