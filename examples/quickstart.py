#!/usr/bin/env python3
"""Quickstart: an encrypted, wear-leveled PCM main memory in five minutes.

Creates a DEUCE-protected memory controller, writes and reads lines through
it, and shows the write-efficiency win over naive counter-mode encryption:
the same update stream costs ~4x fewer cell programs under DEUCE.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import SecureMemoryController

KEY = b"please-use-a-real-key-in-prod!!!"
LINE = 64


def small_update(rng: random.Random, line: bytes, hot_words: list[int]) -> bytes:
    """Mutate a couple of the line's hot words, like a real writeback does.

    Real applications keep touching the same fields of a structure; that
    footprint stability is exactly what DEUCE exploits.
    """
    data = bytearray(line)
    for _ in range(rng.randint(1, 3)):
        w = rng.choice(hot_words)
        data[2 * w] ^= rng.randrange(1, 256)
    return bytes(data)


def drive(controller: SecureMemoryController, seed: int = 0) -> None:
    """Install 32 lines, then send 2000 sparse writebacks."""
    rng = random.Random(seed)
    lines = {
        addr: bytes(rng.randrange(256) for _ in range(LINE))
        for addr in range(0, 32 * LINE, LINE)
    }
    footprints = {
        addr: rng.sample(range(LINE // 2), 4) for addr in lines
    }
    for addr, data in lines.items():
        controller.write(addr, data)
    for _ in range(2000):
        addr = rng.choice(list(lines))
        lines[addr] = small_update(rng, lines[addr], footprints[addr])
        controller.write(addr, lines[addr])
        assert controller.read(addr) == lines[addr]  # decryption is exact


def main() -> None:
    print("== DEUCE quickstart ==\n")

    deuce = SecureMemoryController(scheme="deuce", key=KEY, wear_leveling="hwl")
    baseline = SecureMemoryController(
        scheme="encr-dcw", key=KEY, wear_leveling="none"
    )
    drive(deuce)
    drive(baseline)

    print("Same 2000-writeback stream, two secure-memory designs:\n")
    for name, mc in (("counter-mode (baseline)", baseline), ("DEUCE", deuce)):
        flips_pct = 100 * mc.stats.avg_flips_per_write / (8 * LINE)
        print(
            f"  {name:24s} {mc.stats.avg_flips_per_write:7.1f} bit flips/write"
            f"  ({flips_pct:4.1f}% of the line)"
            f"  {mc.stats.avg_slots_per_write:.2f} write slots"
        )

    ratio = baseline.stats.total_flips / deuce.stats.total_flips
    print(f"\nDEUCE wrote {ratio:.1f}x fewer bits for identical data & security.")
    print(
        f"Estimated lifetime vs the baseline: {deuce.lifetime().normalized:.1f}x"
    )
    print("\nEvery read was verified against the plaintext: decryption exact.")


if __name__ == "__main__":
    main()
